"""``repro.api`` — the one front door to the compression platform.

The platform layers beneath this module (codec/dataset registries, the
shard planner, pluggable executors, the artifact store) are stable, but
historically every workload talked to a different surface:
``LatentDiffusionCompressor`` for single stacks, ``CodecEngine`` for
sweeps, ``MultiVariableCompressor`` for variable sets,
``StreamingCompressor`` for iterators, and a CLI that hand-wired five
container formats.  This module folds them behind two types:

:class:`Session`
    Owns the registry lookups, codec cache, executor backend and
    seeds.  ``session.compress(source, bound=...)`` accepts a
    ``(T, H, W)`` array, a registered dataset name or
    :class:`~repro.data.registry.DatasetSpec`, a multi-variable
    mapping / ``(V, T, H, W)`` array, or a frame *iterator*, and
    dispatches to the right pipeline — engine sweep, multi-variable
    fan-out, or constant-memory streaming — returning an
    :class:`Archive` either way.  ``session.decompress`` inverts any
    archive; ``session.train`` trains any trainable codec and saves a
    portable artifact; ``session.info`` inspects streams and model
    files.

:class:`Archive`
    One typed handle over every container format this repo has ever
    written — raw pipeline blob (``LDCB``), tagged codec envelope
    (``CDX1``), multi-variable archive (``LDMV`` v1/v2), stream
    archive (``LDSA`` v1/v2) and shard archive (``SHRD``) —
    with a single sniffing loader (:meth:`Archive.open`) and uniform
    ``save``/``to_bytes``/``describe``.

Bounds are expressed with the first-class :class:`~repro.bound.Bound`
value type (``Bound.nrmse(1e-3)``, ``Bound.pointwise(0.5)``, ...); the
legacy ``error_bound``/``nrmse_bound`` kwargs remain as thin aliases.

Everything stays spec-portable: a ``Session(executor="process")``
sweep ships codec + dataset specs to pool workers and produces
archives byte-identical to ``executor="serial"``.

>>> import numpy as np
>>> from repro.api import Session, Bound
>>> frames = np.linspace(0.0, 1.0, 4 * 8 * 8).reshape(4, 8, 8)
>>> with Session(codec="szlike") as session:
...     archive = session.compress(frames, bound=Bound.nrmse(1e-3))
...     restored = session.decompress(archive)
>>> archive.kind
'envelope'
>>> bool(np.max(np.abs(restored - frames)) <= 1e-3)
True
"""

from __future__ import annotations

import dataclasses
import inspect
import os
import struct
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Union)

import numpy as np

from .bound import Bound
from .codecs import (Codec, LatentDiffusionCodec, as_codec, get_codec,
                     is_envelope, pack_envelope, unpack_envelope)
from .data.base import SpatiotemporalDataset, train_test_windows
from .data.registry import (DatasetSpec, get_dataset_spec, list_datasets,
                            spec_of)
from .entropy.backend import get_backend as get_entropy_backend
from .entropy.backend import using_backend
from .pipeline.artifacts import (ArtifactStore, is_artifact,
                                 read_manifest, save_artifact)
from .pipeline.blob import CompressedBlob
from .pipeline.container import (MEMBER_ENVELOPE, ArchiveIndexError,
                                 MemberIndex, as_source, verify_member)
from .pipeline.engine import BatchResult, CodecEngine
from .pipeline.executors import Executor, get_executor
from .runtime import JournalError, SweepJournal, facts_fingerprint
from .pipeline.multivar import (MultiVarArchive, MultiVariableCompressor,
                                read_multivar_index)
from .pipeline.plan import (ShardEntry, ShardPlan, assemble_shards,
                            assemble_window, is_shard_archive,
                            pack_shard_archive, plan_shards,
                            read_shard_index, time_slices,
                            unpack_shard_archive)
from .pipeline.sources import (ArrayStackSource, NpyStackSource,
                               as_stack_source)
from .pipeline.streaming import StreamArchive, StreamingCompressor

__all__ = ["Session", "Archive", "Bound", "SessionError",
           "ArchiveIndexError", "ARCHIVE_KINDS", "sniff_kind"]

#: container kinds :meth:`Archive.open` recognizes, in sniff order
ARCHIVE_KINDS = ("shard", "envelope", "multivar", "stream", "blob")

_MULTIVAR_MAGIC = b"LDMV"
_STREAM_MAGIC = b"LDSA"
_BLOB_MAGIC = b"LDCB"
_NPZ_MAGIC = b"PK\x03\x04"

#: the default codec — the paper's pipeline
DEFAULT_CODEC = "ours"


class SessionError(ValueError):
    """A facade-level dispatch/selection problem (bad codec choice,
    unrecognized container, missing model state)."""


# ----------------------------------------------------------------------
# Archive: one handle over every container format.
# ----------------------------------------------------------------------
def sniff_kind(data: bytes) -> str:
    """Identify a compressed container from its magic bytes.

    Returns one of :data:`ARCHIVE_KINDS`, or ``"model"`` for ``.npz``
    files (model artifacts / legacy bundles, which are not archives).
    Raises :class:`SessionError` for unrecognized data.
    """
    head = bytes(data[:4])
    if is_shard_archive(data):
        return "shard"
    if is_envelope(data):
        return "envelope"
    if head == _MULTIVAR_MAGIC:
        return "multivar"
    if head == _STREAM_MAGIC:
        return "stream"
    if head == _BLOB_MAGIC:
        return "blob"
    if head == _NPZ_MAGIC:
        return "model"
    raise SessionError(
        f"unrecognized container (magic {head!r}); expected one of "
        f"{', '.join(ARCHIVE_KINDS)}")


class Archive:
    """A compressed container of any supported format.

    Holds the sniffed ``kind`` plus *either* the wire bytes or a byte
    source (a path or seekable handle).  Source-backed archives are
    fully lazy: :meth:`Archive.open` on a path reads only the magic
    bytes, :meth:`index` answers from the footer in O(1) reads, and
    the body is pulled in only when something actually needs it
    (``.data``, full decode).  Parsed views are built per kind, so
    opening an archive costs one magic check and saving one costs one
    streamed copy.  Instances produced by :meth:`Session.compress`
    additionally carry a ``stats`` dict (ratio, worst NRMSE,
    wall-clock, executor) for reporting.
    """

    def __init__(self, data: Optional[bytes] = None,
                 kind: Optional[str] = None,
                 stats: Optional[dict] = None, *, source=None):
        if (data is None) == (source is None):
            raise SessionError("give archive data or a source, not "
                               "both (or neither)")
        # bytes(b) on a bytes instance is a no-op in CPython, so the
        # common Archive(result_bytes) path does not copy
        self._data = None if data is None else bytes(data)
        self._source = source
        if kind is None:
            head = (self._data[:16] if self._data is not None
                    else source.read_at(0, 16))
            kind = sniff_kind(head)
        self.kind = kind
        if self.kind not in ARCHIVE_KINDS:
            raise SessionError(
                f"{self.kind!r} is not an archive kind; a model "
                f"artifact loads with Codec.load_artifact, not "
                f"Archive.open")
        self.stats = stats or {}
        self._index: Optional[List[MemberIndex]] = None
        # pin the container size at open time: a source-backed archive
        # whose file is truncated under us must fail loudly with a
        # typed error, never hand back silently-short bytes
        self._expected_size = (None if source is None
                               else source.size())

    # -- I/O ------------------------------------------------------------
    @classmethod
    def open(cls, source: Union[str, os.PathLike, bytes, "Archive"]
             ) -> "Archive":
        """Open any supported container: a path, a seekable binary
        handle, raw bytes, or an already-open :class:`Archive`
        (returned as-is).

        Paths and handles open *lazily* — only the few magic bytes
        sniffing needs are read here, and indexed containers keep all
        subsequent member access seek-based.
        """
        if isinstance(source, Archive):
            return source
        if isinstance(source, (bytes, bytearray, memoryview)):
            return cls(bytes(source))
        return cls(source=as_source(source))

    @property
    def data(self) -> bytes:
        """The full wire bytes (reads the body of a lazy archive).

        Raises :class:`ArchiveIndexError` when the backing file no
        longer holds the bytes it had at open time (truncated or
        replaced mid-read).
        """
        if self._data is None:
            data = self._source.read_all()
            if (self._expected_size is not None
                    and len(data) != self._expected_size):
                raise ArchiveIndexError(
                    f"archive source is {len(data)} bytes but was "
                    f"{self._expected_size} at open time (truncated "
                    f"or replaced mid-read)")
            self._data = data
        return self._data

    def reader(self):
        """Random-access byte source over this archive's container."""
        if self._data is not None:
            return as_source(self._data)
        return self._source

    def save(self, path: Union[str, os.PathLike]) -> str:
        """Write the archive's wire bytes to ``path`` (streamed from
        the backing source when the body was never materialized).

        A source-backed archive whose file shrank since open raises
        :class:`ArchiveIndexError` instead of silently writing a
        truncated copy.
        """
        path = os.fspath(path)
        with open(path, "wb") as fh:
            self.reader().copy_to(fh)
        if (self._data is None and self._expected_size is not None):
            written = os.path.getsize(path)
            if written != self._expected_size:
                raise ArchiveIndexError(
                    f"archive source yielded {written} bytes but was "
                    f"{self._expected_size} at open time (truncated "
                    f"or replaced mid-read); partial copy left at "
                    f"{path!r}")
        return path

    def to_bytes(self) -> bytes:
        return self.data

    def __len__(self) -> int:
        if self._data is not None:
            return len(self._data)
        return self._source.size()

    def __eq__(self, other) -> bool:
        return isinstance(other, Archive) and self.data == other.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Archive {self.kind} ({len(self)} bytes)>")

    # -- member index ---------------------------------------------------
    def index(self) -> List[MemberIndex]:
        """Per-member byte extents + checksums of a multi-part archive.

        For indexed containers (SHRD v2, LDMV v3) this reads only the
        footer — O(1) reads regardless of archive size; legacy
        versions are scanned once and equivalent rows synthesized.
        Raises :class:`SessionError` for single-payload kinds, and
        :class:`ArchiveIndexError` when a footer is truncated or
        corrupt.
        """
        if self._index is None:
            if self.kind == "shard":
                self._index = read_shard_index(self.reader())
            elif self.kind == "multivar":
                self._index = read_multivar_index(self.reader())
            else:
                raise SessionError(
                    f"{self.kind!r} archives are single-payload and "
                    f"carry no member index")
        return self._index

    def indexed(self) -> bool:
        """Whether the container carries a seekable footer index.

        Raises :class:`ArchiveIndexError` (never a bare
        ``struct.error``) when the header bytes cannot be read — a
        container truncated below its fixed header.
        """
        try:
            if self.kind == "shard":
                version, = struct.unpack_from(
                    "<H", self.reader().read_at(4, 2))
                return version >= 2
            if self.kind == "multivar":
                return self.reader().read_at(4, 1)[0] >= 3
        except (struct.error, IndexError):
            raise ArchiveIndexError(
                f"{self.kind} container is truncated below its fixed "
                f"header; cannot read the version field") from None
        return False

    # -- parsed views ---------------------------------------------------
    def shard_entries(self) -> List[ShardEntry]:
        self._expect("shard")
        return unpack_shard_archive(self.data)

    def envelope(self):
        """``(codec_name, payload)`` of an envelope archive."""
        self._expect("envelope")
        return unpack_envelope(self.data)

    def multivar(self) -> MultiVarArchive:
        self._expect("multivar")
        return MultiVarArchive.from_bytes(self.data)

    def stream(self) -> StreamArchive:
        self._expect("stream")
        return StreamArchive.from_bytes(self.data)

    def blob(self) -> CompressedBlob:
        self._expect("blob")
        return CompressedBlob.from_bytes(self.data)

    def _expect(self, kind: str) -> None:
        if self.kind != kind:
            raise SessionError(f"archive is {self.kind!r}, not {kind!r}")

    # -- introspection --------------------------------------------------
    def codecs(self) -> List[str]:
        """Sorted codec names referenced by this archive.

        Raw blobs and blob entries belong to the pipeline codec
        (``"ours"``).
        """
        if self.kind == "blob":
            return [DEFAULT_CODEC]
        if self.kind == "envelope":
            return [self.envelope()[0]]
        if self.kind in ("shard", "multivar"):
            return sorted({m.codec or DEFAULT_CODEC
                           for m in self.index()})
        st = self.stream()
        names = {unpack_envelope(env)[0] for _, env in st.envelopes}
        if st.blobs:
            names.add(DEFAULT_CODEC)
        return sorted(names)

    @staticmethod
    def _member_payload_bytes(m: MemberIndex) -> int:
        """Inner payload size of a member (envelope header stripped)."""
        if m.kind == MEMBER_ENVELOPE:
            # envelope header: magic + name-length byte + name + u64
            return max(0, m.length - (13 + len(m.codec.encode())))
        return m.length

    def describe(self) -> dict:
        """Structured summary (what ``repro info`` renders).

        Multi-part kinds answer from the member index — for indexed
        containers that means header + footer reads only, so ``repro
        info`` on a multi-GB archive stays instant — and report each
        member's byte extent plus whether a seekable footer is
        present.
        """
        out: Dict[str, Any] = {"kind": self.kind,
                               "total_bytes": len(self)}
        if self.kind == "shard":
            members = self.index()
            out["indexed"] = self.indexed()
            out["entries"] = [
                {"shard_id": m.key,
                 "codec": m.codec or DEFAULT_CODEC,
                 "t0": m.t0, "t1": m.t1,
                 "payload_bytes": self._member_payload_bytes(m),
                 "offset": m.offset, "length": m.length,
                 "crc32": m.crc32}
                for m in members]
            out["variables"] = sorted({m.variable for m in members})
        elif self.kind == "envelope":
            name, payload = self.envelope()
            out["codec"] = name
            out["payload_bytes"] = len(payload)
        elif self.kind == "multivar":
            members = self.index()
            out["indexed"] = self.indexed()
            blobs = sorted(m.key for m in members if not m.codec)
            envs = sorted(m.key for m in members if m.codec)
            out["variables"] = blobs + envs
            out["codecs"] = self.codecs()
            out["entries"] = [
                {"variable": m.key,
                 "codec": m.codec or DEFAULT_CODEC,
                 "offset": m.offset, "length": m.length,
                 "crc32": m.crc32}
                for m in members]
        elif self.kind == "stream":
            st = self.stream()
            out["chunks"] = st.num_chunks
            out["frames"] = st.num_frames
            out["codecs"] = self.codecs()
        else:  # blob
            out["blob"] = self.blob()
            out["codec"] = DEFAULT_CODEC
        return out


# ----------------------------------------------------------------------
# Session: registry lookups + executor + seeds behind one object.
# ----------------------------------------------------------------------
class Session:
    """A configured entry point to compress / decompress / train.

    Parameters
    ----------
    codec:
        Default codec for :meth:`compress`: a registry name, a
        :class:`~repro.codecs.base.Codec`, or a native compressor
        object (anything :func:`repro.codecs.as_codec` accepts).
        Defaults to the paper's pipeline (``"ours"``, which needs
        ``model`` or ``artifact`` to be usable).
    model:
        Trained model bundle path (``.npz``) for the ``"ours"`` codec.
    artifact:
        Model artifact path (``.npz`` written by
        :meth:`~repro.codecs.base.Codec.save_artifact` /
        ``repro train``); loads the trained codec it holds and makes
        it this session's default.
    store:
        :class:`~repro.pipeline.artifacts.ArtifactStore` (or its root
        directory) used by :meth:`train` when saving to a store.
    executor:
        Execution backend for sweeps: ``"serial"`` / ``"thread"`` /
        ``"process"`` or a ready
        :class:`~repro.pipeline.executors.Executor`.  Owned by the
        session — process pools stay warm across calls; use the
        session as a context manager (or call :meth:`close`) to
        release them.
    workers:
        Pool-width upper bound (default: one per CPU, clamped to the
        work size).
    seed:
        Base seed for deterministic per-window/variable/chunk seeding.
    chunk_windows:
        Codec windows per chunk for iterator (streaming) sources.
    entropy_backend:
        Entropy-coder selection for every stream this session writes:
        ``"arithmetic"`` (the legacy default), ``"rans"``, ``"vrans"``
        (the vectorized fast path), or ``"trans"`` (table-cached LUT
        rANS — fastest decode, reuses tables across windows) — see
        :mod:`repro.entropy.backend`.  ``None`` keeps the process
        default.  Decoding never needs it: streams carry a backend
        tag, and untagged legacy streams decode via arithmetic.
    """

    def __init__(self, codec: Union[str, Codec, object, None] = None,
                 *, model: Optional[str] = None,
                 artifact: Optional[str] = None,
                 store: Union[ArtifactStore, str, os.PathLike,
                              None] = None,
                 executor: Union[str, Executor] = "thread",
                 workers: Optional[int] = None,
                 seed: int = 0, chunk_windows: int = 4,
                 entropy_backend: Optional[str] = None):
        self.model = model
        self.seed = seed
        self.chunk_windows = chunk_windows
        try:
            self.entropy_backend = (
                None if entropy_backend is None
                else get_entropy_backend(entropy_backend).name)
        except KeyError as exc:
            raise SessionError(exc.args[0]) from None
        self.executor = get_executor(executor, max_workers=workers)
        self.workers = self.executor.max_workers
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        #: codec cache: registry name -> resolved (possibly trained)
        #: codec, shared by compress and decompress dispatch
        self._codecs: Dict[str, Codec] = {}
        self._default: Optional[Codec] = None
        self._default_name = DEFAULT_CODEC
        if artifact is not None:
            loaded = self._load_artifact_codec(
                artifact, expect=codec if isinstance(codec, str) else None)
            self._codecs[loaded.name] = loaded
            self._default = loaded
            self._default_name = loaded.name
        elif codec is not None:
            if isinstance(codec, str):
                self._default_name = codec
            else:
                self._default = as_codec(codec)
                self._default_name = self._default.name
                self._codecs[self._default_name] = self._default

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release pooled executor resources.

        Idempotent and exception-safe by contract: double-close is a
        no-op, closing a partially-constructed session (``__init__``
        validates codec and entropy arguments *before* the executor
        exists) is a no-op, and a failing executor teardown never
        propagates — long-running owners (the compression service's
        shutdown path) call this from ``finally`` and must always
        complete.
        """
        executor = getattr(self, "executor", None)
        if executor is None:
            return
        try:
            executor.close()
        except Exception:  # pragma: no cover - backend-specific
            pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = (f" entropy={self.entropy_backend!r}"
                   if self.entropy_backend else "")
        return (f"<Session codec={self._default_name!r} "
                f"executor={self.executor.name!r}{backend} "
                f"seed={self.seed}>")

    # -- codec resolution ----------------------------------------------
    def _load_artifact_codec(self, artifact: str,
                             expect: Optional[str]) -> Codec:
        try:
            codec = Codec.load_artifact(artifact)
        except (OSError, ValueError, KeyError) as exc:
            raise SessionError(
                f"cannot load artifact {artifact!r}: {exc}") from None
        if (expect and expect != DEFAULT_CODEC
                and codec.name != expect):
            raise SessionError(
                f"artifact {artifact!r} holds codec {codec.name!r}, "
                f"not {expect!r}")
        return codec

    def resolve_codec(self, codec: Union[str, Codec, object, None] = None
                      ) -> Codec:
        """Resolve a codec description against this session.

        ``None`` resolves the session default; a name goes through the
        registry (consulting the session's cache of trained codecs
        first); anything else is adopted via
        :func:`repro.codecs.as_codec`.  Learned codecs that need
        training raise with a pointer at the artifact workflow, and
        ``"ours"`` loads the session's ``model`` bundle.
        """
        if codec is None:
            if self._default is not None:
                return self._default
            codec = self._default_name
        if not isinstance(codec, str):
            return as_codec(codec)
        name = codec
        cached = self._codecs.get(name)
        if cached is not None:
            return cached
        if name == DEFAULT_CODEC:
            if not self.model or self.model == "-":
                raise SessionError(
                    "codec 'ours' needs a trained model bundle (.npz)")
            resolved = LatentDiffusionCodec.from_bundle(self.model)
        else:
            resolved = get_codec(name)  # KeyError lists registered
            if resolved.capabilities.needs_training:
                raise SessionError(
                    f"codec {name!r} is learning-based; train it first "
                    f"(repro train --codec {name}) and pass the saved "
                    f"model with --codec-artifact")
        self._codecs[name] = resolved
        return resolved

    # -- source resolution ---------------------------------------------
    @staticmethod
    def _dataset_spec(source: Union[str, DatasetSpec,
                                    SpatiotemporalDataset],
                      overrides: Optional[dict]) -> DatasetSpec:
        overrides = overrides or {}
        if isinstance(source, str):
            return get_dataset_spec(source, **overrides)
        if not isinstance(source, DatasetSpec):
            source = spec_of(source)
        return source.override(**overrides) if overrides else source

    def resolve_frames(self, source, variable: int = 0,
                       dataset_overrides: Optional[dict] = None):
        """``(frames, dataset_provenance)`` for an array or dataset.

        Arrays pass through (no provenance); dataset names / specs /
        instances generate one variable's frames and record the spec.
        """
        if isinstance(source, np.ndarray):
            return source, None
        if isinstance(source, (str, DatasetSpec, SpatiotemporalDataset)):
            spec = self._dataset_spec(source, dataset_overrides)
            return (spec.build().frames(variable),
                    dataclasses.asdict(spec))
        raise SessionError(
            f"cannot resolve frames from {type(source).__name__}; pass "
            f"a (T, H, W) array, a registered dataset name "
            f"({', '.join(list_datasets())}), or a DatasetSpec")

    # -- compress -------------------------------------------------------
    def compress(self, source, *,
                 codec: Union[str, Codec, object, None] = None,
                 bound: Optional[Bound] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 names: Optional[Sequence[str]] = None,
                 variables: Optional[Sequence[int]] = None,
                 shards: Optional[int] = None,
                 seed: Optional[int] = None,
                 label: Optional[str] = None,
                 chunk_windows: Optional[int] = None,
                 chunk_shards: Optional[int] = None,
                 dataset_overrides: Optional[dict] = None,
                 keep_reconstruction: bool = True,
                 entropy_backend: Optional[str] = None) -> Archive:
        """Compress any supported source into an :class:`Archive`.

        Dispatch by source type:

        * ``(T, H, W)`` array — single codec pass (raw blob for the
          blob-native pipeline codec, tagged envelope otherwise); with
          ``shards=N`` the time axis splits into N slices executed on
          the session backend and packed as a shard archive
          (``label`` names the shards, default ``"stack"``);
        * ``.npy`` path / ``np.memmap`` / stack source — *out-of-core*
          sharded compression: frames stream through the engine in
          bounded groups of ``chunk_shards`` shards (default: one per
          worker), so peak RSS is O(chunk), not O(dataset), and the
          archive is byte-identical to compressing the same array
          in-memory with the same ``shards``/``label``/``seed``
          (``shards`` defaults to one shard per 16 frames);
        * registered dataset name / :class:`DatasetSpec` / dataset
          instance — deterministic shard plan (``variables``,
          ``shards``, ``dataset_overrides``) fanned out on the session
          backend; workers rebuild codec + dataset from specs, so
          serial/thread/process archives are byte-identical;
        * mapping ``name -> (T, H, W)`` or ``(V, T, H, W)`` array —
          multi-variable archive (``names`` labels the array form);
        * any other iterable of ``(H, W)`` frames — constant-memory
          streaming into a stream archive (``chunk_windows``).

        ``bound`` is a :class:`~repro.bound.Bound` (the legacy
        ``error_bound``/``nrmse_bound`` kwargs still work); bounds
        apply per window/variable/chunk, each normalized against its
        own data statistics.  ``entropy_backend`` overrides the
        session's entropy-coder selection for this call.
        """
        target = Bound.coalesce(bound=bound, error_bound=error_bound,
                                nrmse_bound=nrmse_bound)
        seed = self.seed if seed is None else seed
        try:
            entropy = (self.entropy_backend if entropy_backend is None
                       else get_entropy_backend(entropy_backend).name)
        except KeyError as exc:
            raise SessionError(exc.args[0]) from None

        if isinstance(source, Mapping) or (
                isinstance(source, np.ndarray) and source.ndim == 4):
            return self._compress_multivar(source, codec, target, names,
                                           seed, entropy)
        if (isinstance(source, (NpyStackSource, ArrayStackSource,
                                np.memmap, os.PathLike))
                or (isinstance(source, str)
                    and source.endswith(".npy"))):
            return self._compress_out_of_core(
                source, codec, target, shards, seed, label,
                chunk_shards, entropy)
        if isinstance(source, (str, DatasetSpec, SpatiotemporalDataset)):
            return self._compress_plan(source, codec, target, variables,
                                       shards, seed, dataset_overrides,
                                       keep_reconstruction, entropy)
        if isinstance(source, np.ndarray):
            if source.ndim != 3:
                raise SessionError(
                    f"expected a (T, H, W) or (V, T, H, W) array, got "
                    f"shape {source.shape}")
            if shards is not None and shards > 1:
                return self._compress_sharded_stack(
                    source, codec, target, shards, seed, label,
                    keep_reconstruction, entropy)
            return self._compress_stack(source, codec, target, seed,
                                        entropy)
        if isinstance(source, Iterable):
            return self._compress_stream(source, codec, target, seed,
                                         chunk_windows, entropy)
        raise SessionError(
            f"cannot compress {type(source).__name__}; pass an array, "
            f"a dataset name/spec, a variable mapping, or a frame "
            f"iterator")

    # per-source pipelines ------------------------------------------------
    def _engine(self, codec: Codec, seed: int,
                entropy: Optional[str]) -> CodecEngine:
        return CodecEngine(codec, base_seed=seed, executor=self.executor,
                           entropy_backend=entropy)

    def _compress_stack(self, frames: np.ndarray, codec, target,
                        seed: int, entropy: Optional[str]) -> Archive:
        resolved = self.resolve_codec(codec)
        with using_backend(entropy):
            result = resolved.compress_bounded(frames, bound=target,
                                               seed=seed)
        # blob-native codecs write their raw wire format (the legacy
        # single-file layout); everything else gets a tagged envelope
        if result.blob is not None:
            data, kind = result.payload, "blob"
        else:
            data, kind = pack_envelope(resolved.name,
                                       result.payload), "envelope"
        return Archive(data, kind, stats={
            "codec": resolved.name, "ratio": result.ratio,
            "nrmse": result.achieved_nrmse, "bytes": len(data)})

    def _pack_shards(self, resolved: Codec, meta, batch) -> Archive:
        entries = [ShardEntry(shard_id=sid, variable=var, t0=t0, t1=t1,
                              payload=pack_envelope(resolved.name,
                                                    r.payload))
                   for (sid, var, t0, t1), r in zip(meta, batch.results)]
        data = pack_shard_archive(entries)
        acc = batch.accounting()
        return Archive(data, "shard", stats={
            "codec": resolved.name, "ratio": acc.ratio,
            "nrmse": batch.worst_nrmse(), "bytes": len(data),
            "shards": len(entries), "executor": self.executor.name,
            "wall_seconds": batch.wall_seconds})

    def _compress_sharded_stack(self, frames, codec, target, shards,
                                seed, label, keep_reconstruction,
                                entropy: Optional[str]) -> Archive:
        resolved = self.resolve_codec(codec)
        slices = time_slices(frames.shape[0], shards=shards)
        stem = label or "stack"
        meta = [(f"{stem}/v0/t{a:04d}-{b:04d}", 0, a, b)
                for a, b in slices]
        engine = self._engine(resolved, seed, entropy)
        batch = engine.compress([frames[a:b] for a, b in slices],
                                bound=target,
                                keep_reconstruction=keep_reconstruction)
        return self._pack_shards(resolved, meta, batch)

    def _compress_out_of_core(self, src, codec, target, shards, seed,
                              label, chunk_shards,
                              entropy: Optional[str]) -> Archive:
        """Sharded compression streamed from an on-disk/mapped source.

        The time axis splits exactly like the in-memory sharded path,
        but shards materialize in bounded groups of ``chunk_shards``:
        each group's frames are read, compressed (with the group's
        global shard indexes driving the engine's seeding via
        ``first_index``) and dropped before the next group loads, so
        peak RSS tracks the group size.  Reconstructions are never
        retained.  The packed archive is byte-for-byte what the
        in-memory path would produce for the same array.
        """
        try:
            source = as_stack_source(src)
        except (ValueError, OSError, KeyError) as exc:
            raise SessionError(
                f"cannot open stack source "
                f"{getattr(src, 'path', src)!r}: {exc}") from None
        resolved = self.resolve_codec(codec)
        if shards is None:
            shards = max(1, -(-source.t // 16))
        if chunk_shards is None:
            chunk_shards = max(1, self.workers)
        if chunk_shards < 1:
            raise SessionError("chunk_shards must be >= 1")
        slices = time_slices(source.t, shards=shards)
        stem = label or "stack"
        meta = [(f"{stem}/v0/t{a:04d}-{b:04d}", 0, a, b)
                for a, b in slices]
        engine = self._engine(resolved, seed, entropy)
        reports = []
        wall = 0.0
        for g0 in range(0, len(slices), chunk_shards):
            group = slices[g0:g0 + chunk_shards]
            stacks = [source.read(a, b) for a, b in group]
            part = engine.compress(stacks, bound=target,
                                   keep_reconstruction=False,
                                   first_index=g0)
            reports.extend(part.reports)
            wall += part.wall_seconds
            del stacks, part
        batch = BatchResult(reports=reports, wall_seconds=wall)
        archive = self._pack_shards(resolved, meta, batch)
        archive.stats["chunk_shards"] = chunk_shards
        return archive

    def _compress_plan(self, dataset, codec, target, variables, shards,
                       seed, dataset_overrides, keep_reconstruction,
                       entropy: Optional[str]) -> Archive:
        resolved = self.resolve_codec(codec)
        spec = self._dataset_spec(dataset, dataset_overrides)
        plan: ShardPlan = plan_shards(spec, variables=variables,
                                      shards=shards or 1, base_seed=seed)
        engine = self._engine(resolved, seed, entropy)
        batch = engine.compress_plan(plan, bound=target,
                                     keep_reconstruction=keep_reconstruction)
        meta = [(t.shard_id, t.variable, t.t0, t.t1) for t in plan]
        return self._pack_shards(resolved, meta, batch)

    # -- resumable sweeps ------------------------------------------------
    def sweep(self, dataset, *,
              codec: Union[str, Codec, object, None] = None,
              bound: Optional[Bound] = None,
              error_bound: Optional[float] = None,
              nrmse_bound: Optional[float] = None,
              variables: Optional[Sequence[int]] = None,
              shards: Optional[int] = None,
              window: Optional[int] = None,
              seed: Optional[int] = None,
              journal: Union[str, os.PathLike, None] = None,
              resume: bool = True,
              dataset_overrides: Optional[dict] = None,
              entropy_backend: Optional[str] = None,
              on_event=None) -> Archive:
        """Journaled, resumable shard sweep over a registered dataset.

        Semantically ``compress(dataset, ...)`` for the plan-backed
        path, with one addition: ``journal=path`` makes the sweep
        **crash-safe** — every completed shard is durably recorded
        (fsynced JSONL line + content-addressed payload object under
        ``<journal>.objects/``) the moment it finishes, and a rerun
        pointed at the same journal replays completed shards and
        recomputes only the missing ones.  The resumed archive is
        byte-identical to an uninterrupted run.

        The journal is fingerprinted over the sweep's canonical facts
        (dataset spec, codec spec, bound, entropy backend, seed and
        the shard grid); reusing a journal with different parameters
        raises :class:`SessionError` instead of silently mixing
        results.  ``resume=False`` refuses a journal that already has
        completed shards (the CLI's default until ``--resume``).

        ``window=W`` slices the time axis into fixed-width windows
        (last one short) instead of ``shards=N`` near-equal parts;
        give one or the other.  ``on_event`` observes runtime
        :class:`~repro.runtime.TaskEvent`s (progress reporting, fault
        injection in tests).
        """
        target = Bound.coalesce(bound=bound, error_bound=error_bound,
                                nrmse_bound=nrmse_bound)
        seed = self.seed if seed is None else seed
        try:
            entropy = (self.entropy_backend if entropy_backend is None
                       else get_entropy_backend(entropy_backend).name)
        except KeyError as exc:
            raise SessionError(exc.args[0]) from None
        resolved = self.resolve_codec(codec)
        spec = self._dataset_spec(dataset, dataset_overrides)
        if window is None and shards is None:
            shards = 1
        try:
            plan: ShardPlan = plan_shards(spec, variables=variables,
                                          shards=shards, window=window,
                                          base_seed=seed)
        except ValueError as exc:
            raise SessionError(str(exc)) from None

        jr = None
        if journal is not None:
            try:
                codec_spec = resolved.to_spec()
            except TypeError:
                codec_spec = {"codec": resolved.name}
            facts = {"dataset": dataclasses.asdict(spec),
                     "codec": codec_spec,
                     "bound": (None if target is None
                               else [target.kind, target.value]),
                     "entropy_backend": entropy or "arithmetic",
                     "seed": seed, "shards": shards, "window": window,
                     "variables": (None if variables is None
                                   else list(variables))}
            try:
                jr = SweepJournal(journal,
                                  fingerprint=facts_fingerprint(facts))
            except JournalError as exc:
                raise SessionError(str(exc)) from None
            if len(jr) and not resume:
                done = len(jr)
                jr.close()
                raise SessionError(
                    f"journal {os.fspath(journal)} already records "
                    f"{done} completed shard(s); resume it "
                    f"(resume=True / --resume) or point the sweep at "
                    f"a fresh journal path")

        engine = self._engine(resolved, seed, entropy)
        try:
            batch = engine.compress_plan(plan, bound=target,
                                         keep_reconstruction=False,
                                         journal=jr, on_event=on_event)
        finally:
            if jr is not None:
                jr.close()
        meta = [(t.shard_id, t.variable, t.t0, t.t1) for t in plan]
        archive = self._pack_shards(resolved, meta, batch)
        archive.stats["resumed_shards"] = batch.replayed
        archive.stats["computed_shards"] = len(meta) - batch.replayed
        if journal is not None:
            archive.stats["journal"] = os.fspath(journal)
        return archive

    def _compress_multivar(self, data, codec, target, names, seed,
                           entropy: Optional[str]) -> Archive:
        resolved = self.resolve_codec(codec)
        mv = MultiVariableCompressor(resolved, max_workers=self.workers)
        with using_backend(entropy):
            result = mv.compress(data, names=names, bound=target,
                                 noise_seed=seed)
            wire = result.archive().to_bytes()
        return Archive(wire, "multivar", stats={
            "codec": resolved.name, "ratio": result.ratio,
            "nrmse": result.worst_nrmse(), "bytes": len(wire),
            "variables": result.variables})

    def _compress_stream(self, frames, codec, target, seed,
                         chunk_windows,
                         entropy: Optional[str]) -> Archive:
        resolved = self.resolve_codec(codec)
        sc = StreamingCompressor(
            resolved, chunk_windows=chunk_windows or self.chunk_windows)
        with using_backend(entropy):
            stream = sc.compress(frames, bound=target, noise_seed=seed)
            wire = stream.to_bytes()
        acc = stream.accounting()
        return Archive(wire, "stream", stats={
            "codec": resolved.name, "ratio": acc.ratio,
            "bytes": len(wire), "chunks": stream.num_chunks,
            "frames": stream.num_frames})

    # -- decompress -----------------------------------------------------
    def decompress(self, source, *,
                   expect_codec: Optional[str] = None,
                   select=None):
        """Reconstruct any :class:`Archive` (or path / bytes).

        Returns a ``(T, H, W)`` array for blob / envelope / stream
        archives, ``(T, H, W)`` or ``(V, T, H, W)`` for shard archives
        (stitched via the recorded geometry), and a ``{name: array}``
        dict for multi-variable archives.  Codecs are resolved from
        the streams themselves through the session (so trained state
        loaded via ``artifact``/``model`` is picked up); with
        ``expect_codec`` a mismatching stream raises instead.

        ``select`` turns this into a *partial* decode that touches
        only the selected members (via the archive's member index, so
        an indexed archive opened from a path reads O(footer +
        selected members) bytes, checksum-verified):

        * for shard archives — a shard id (``"stack/v0/t0000-0008"``),
          a variable number (``0``), a ``slice(t0, t1)`` time range
          (frames outside selected shards are trimmed exactly), or a
          sequence of shard ids / variables;
        * for multi-variable archives — a variable name or sequence
          of names (returns the ``{name: array}`` sub-dict).

        Selected members decode in parallel on the session's executor
        backend, byte-identical to a serial decode of the same
        members.
        """
        archive = Archive.open(source)
        if select is not None:
            if archive.kind == "shard":
                return self._decompress_shards(archive, expect_codec,
                                               select=select)
            if archive.kind == "multivar":
                return self._decompress_multivar_select(
                    archive, expect_codec, select)
            raise SessionError(
                f"select= needs a multi-part archive (shard or "
                f"multivar); this archive is {archive.kind!r}")
        if archive.kind == "shard":
            return self._decompress_shards(archive, expect_codec)
        if archive.kind == "envelope":
            name, payload = archive.envelope()
            self._check_expected(
                name, expect_codec,
                f"stream was written by codec {name!r}, "
                f"not {expect_codec!r}")
            return self.resolve_codec(name).decompress(payload)
        if archive.kind == "blob":
            if expect_codec and expect_codec != DEFAULT_CODEC:
                raise SessionError(
                    f"stream is a raw pipeline blob, not a "
                    f"{expect_codec!r} envelope")
            return self._ours_codec().decompress(archive.data)
        if archive.kind == "multivar":
            return self._decompress_multivar(archive, expect_codec)
        return self._decompress_stream(archive, expect_codec)

    @staticmethod
    def _check_expected(name: str, expect: Optional[str],
                        message: str) -> None:
        if expect and expect != name:
            raise SessionError(message)

    def _ours_codec(self) -> Codec:
        """The pipeline codec, with a blob-specific missing-model hint."""
        try:
            return self.resolve_codec(DEFAULT_CODEC)
        except SessionError:
            if not self.model or self.model == "-":
                raise SessionError(
                    "raw pipeline streams need a trained model bundle "
                    "(.npz)") from None
            raise

    # -- partial / parallel member decode -------------------------------
    @staticmethod
    def _select_members(members: List[MemberIndex], select):
        """Resolve a shard selector into ``(members, (t0, t1) | None)``.

        Accepts a shard id, a variable number, a ``slice`` time range,
        or a sequence mixing ids and variables.  The returned window
        is non-None only for time-range selects (callers trim shard
        overhang to it exactly).
        """
        if isinstance(select, slice):
            if select.step not in (None, 1):
                raise SessionError("select= time ranges must have "
                                   "step 1")
            t_max = max(m.t1 for m in members)
            t0 = 0 if select.start is None else int(select.start)
            t1 = t_max if select.stop is None else int(select.stop)
            if t0 < 0:
                t0 += t_max
            if t1 < 0:
                t1 += t_max
            t0, t1 = max(t0, 0), min(t1, t_max)
            if t0 >= t1:
                raise SessionError(
                    f"empty time range [{t0}, {t1}) (archive spans "
                    f"[0, {t_max}))")
            hits = [m for m in members if m.t0 < t1 and m.t1 > t0]
            return hits, (t0, t1)
        if isinstance(select, (int, np.integer)):
            hits = [m for m in members if m.variable == int(select)]
            if not hits:
                known = sorted({m.variable for m in members})
                raise SessionError(
                    f"no shards for variable {int(select)}; archive "
                    f"holds variables {known}")
            return hits, None
        if isinstance(select, str):
            hits = [m for m in members if m.key == select]
            if not hits:
                keys = [m.key for m in members]
                raise SessionError(
                    f"no shard {select!r}; archive holds "
                    f"{keys}")
            return hits, None
        if isinstance(select, Sequence):
            picked: Dict[str, MemberIndex] = {}
            for sel in select:
                hits, _ = Session._select_members(members, sel)
                for m in hits:
                    picked[m.key] = m
            ordered = [m for m in members if m.key in picked]
            return ordered, None
        raise SessionError(
            f"cannot select shards with {type(select).__name__}; pass "
            f"a shard id, a variable number, a slice, or a sequence "
            f"of those")

    def _decode_member_payloads(self, named: List, expect: Optional[str],
                                context: str) -> List[np.ndarray]:
        """Decode ``(codec_name | None, payload)`` pairs, fanned out
        per codec on the session executor.

        ``None`` names a raw pipeline blob (decoded by the session's
        ``"ours"`` codec).  Grouping preserves input order in the
        returned arrays.  Backends that need spec-portable codecs
        (process pools) fall back to in-process decode when the codec
        cannot be shipped — the session's executor choice must never
        make a readable archive unreadable.
        """
        groups: Dict[Optional[str], List[int]] = {}
        for i, (name, _) in enumerate(named):
            self._check_expected(
                name or DEFAULT_CODEC, expect,
                f"{context} was written by codec "
                f"{(name or DEFAULT_CODEC)!r}, not {expect!r}")
            groups.setdefault(name, []).append(i)
        out: List[Optional[np.ndarray]] = [None] * len(named)
        for name, idxs in groups.items():
            codec = (self._ours_codec() if name is None
                     else self.resolve_codec(name))
            payloads = [named[i][1] for i in idxs]
            if len(payloads) == 1:
                arrays = [codec.decompress(payloads[0])]
            else:
                try:
                    engine = CodecEngine(codec, executor=self.executor)
                    arrays = engine.decompress(payloads)
                except TypeError:
                    arrays = [codec.decompress(p) for p in payloads]
            for i, arr in zip(idxs, arrays):
                out[i] = arr
        return out

    def _read_members(self, archive: Archive,
                      members: List[MemberIndex]) -> List[bytes]:
        """Fetch + checksum-verify each member's stored bytes."""
        src = archive.reader()
        return [verify_member(src.read_at(m.offset, m.length), m)
                for m in members]

    def _decompress_shards(self, archive: Archive,
                           expect: Optional[str],
                           select=None) -> np.ndarray:
        members = archive.index()
        if not members:
            raise SessionError("empty shard archive")
        window = None
        if select is not None:
            members, window = self._select_members(members, select)
        named = []
        for m, raw in zip(members, self._read_members(archive, members)):
            if m.kind == MEMBER_ENVELOPE:
                name, payload = unpack_envelope(raw)
                named.append((name, payload))
            else:
                named.append((None, raw))
        arrays = self._decode_member_payloads(
            named, expect, context="shard")
        entries = [ShardEntry(shard_id=m.key, variable=m.variable,
                              t0=m.t0, t1=m.t1, payload=b"")
                   for m in members]
        if select is None:
            return assemble_window(entries, arrays, t0=0,
                                   t1=max(m.t1 for m in members))
        t0, t1 = window if window is not None else (None, None)
        return assemble_window(entries, arrays, t0=t0, t1=t1)

    def _decompress_multivar_select(self, archive: Archive,
                                    expect: Optional[str], select
                                    ) -> Dict[str, np.ndarray]:
        names = ([select] if isinstance(select, str)
                 else list(select) if isinstance(select, Sequence)
                 else None)
        if not names or not all(isinstance(n, str) for n in names):
            raise SessionError(
                "multivar select= takes a variable name or a sequence "
                "of names")
        by_key = {m.key: m for m in archive.index()}
        try:
            members = [by_key[n] for n in names]
        except KeyError as exc:
            raise SessionError(
                f"no variable {exc.args[0]!r}; archive holds "
                f"{sorted(by_key)}") from None
        named = []
        for m, raw in zip(members, self._read_members(archive, members)):
            if m.kind == MEMBER_ENVELOPE:
                codec_name, payload = unpack_envelope(raw)
                named.append((codec_name, payload))
            else:
                named.append((None, raw))
        arrays = self._decode_member_payloads(
            named, expect, context="variable")
        return {m.key: arr for m, arr in zip(members, arrays)}

    def _decompress_multivar(self, archive: Archive,
                             expect: Optional[str]
                             ) -> Dict[str, np.ndarray]:
        mv = archive.multivar()
        out: Dict[str, np.ndarray] = {}
        for name, blob in mv.blobs.items():
            codec = self._ours_codec()
            out[name] = (codec.decompress_blob(blob)
                         if hasattr(codec, "decompress_blob")
                         else codec.decompress(blob.to_bytes()))
        for name, env in mv.envelopes.items():
            codec_name, payload = unpack_envelope(env)
            self._check_expected(
                codec_name, expect,
                f"variable {name!r} was written by codec "
                f"{codec_name!r}, not {expect!r}")
            out[name] = self.resolve_codec(codec_name).decompress(payload)
        return out

    def _decompress_stream(self, archive: Archive,
                           expect: Optional[str]) -> np.ndarray:
        st = archive.stream()
        chunks = []
        for blob in st.blobs:
            codec = self._ours_codec()
            chunks.append(codec.decompress_blob(blob)
                          if hasattr(codec, "decompress_blob")
                          else codec.decompress(blob.to_bytes()))
        for _, env in st.envelopes:
            name, payload = unpack_envelope(env)
            self._check_expected(
                name, expect,
                f"archive chunk was written by codec {name!r}, "
                f"not {expect!r}")
            chunks.append(self.resolve_codec(name).decompress(payload))
        return np.concatenate(chunks, axis=0)

    # -- train ----------------------------------------------------------
    def train(self, codec: str, source, *, save=None,
              variable: int = 0,
              dataset_overrides: Optional[dict] = None,
              preset: str = "tiny",
              vae_iters: int = 300, diffusion_iters: int = 800,
              sr_iters: int = 100, finetune_iters: int = 0,
              lam: float = 1e-6, train_fraction: float = 0.5,
              stride: int = 1, window: int = 6, corrector: bool = True,
              seed: Optional[int] = None, log=None):
        """Train any trainable codec and persist a portable artifact.

        ``source`` is a ``(T, H, W)`` array or a dataset name/spec
        (``variable``, ``dataset_overrides`` select what to generate);
        ``save`` is the artifact path — or ``None`` to use the
        session's :class:`~repro.pipeline.artifacts.ArtifactStore`.
        Family-specific iteration kwargs are mapped onto each codec's
        ``train()`` signature (the shared CLI vocabulary).  Returns
        ``(trained_codec, manifest_or_store_key)``.
        """
        seed = self.seed if seed is None else seed
        log = log or (lambda *_: None)
        if save is None and self.store is None:
            raise SessionError("give save=... or configure the session "
                               "with an ArtifactStore")
        frames, dataset_meta = self.resolve_frames(
            source, variable=variable,
            dataset_overrides=dataset_overrides)
        frames = np.asarray(frames)
        if frames.ndim != 3:
            raise SessionError(f"expected a (T, H, W) array, got "
                               f"{frames.shape}")
        if codec == DEFAULT_CODEC:
            return self._train_ours(frames, dataset_meta, save, preset,
                                    vae_iters, diffusion_iters,
                                    finetune_iters, lam, train_fraction,
                                    stride, seed, log)
        return self._train_learned(codec, frames, dataset_meta, save,
                                   vae_iters, diffusion_iters, sr_iters,
                                   lam, train_fraction, stride, window,
                                   corrector, seed, log)

    def _train_ours(self, frames, dataset_meta, save, preset, vae_iters,
                    diffusion_iters, finetune_iters, lam,
                    train_fraction, stride, seed, log):
        """The paper's two-stage latent-diffusion training protocol."""
        from .config import small, tiny
        from .pipeline.training import TrainingConfig, TwoStageTrainer
        presets = {"tiny": tiny, "small": small}
        cfg = presets[preset]()
        train, _ = train_test_windows(frames,
                                      window=cfg.pipeline.window,
                                      train_fraction=train_fraction,
                                      stride=stride)
        tc = TrainingConfig(vae_iters=vae_iters,
                            diffusion_iters=diffusion_iters,
                            finetune_iters=finetune_iters, lam=lam)
        trainer = TwoStageTrainer(cfg, tc, seed=seed)
        log(f"stage 1: VAE ({tc.vae_iters} iters) ...")
        trainer.train_vae(train)
        log(f"stage 2: diffusion ({tc.diffusion_iters} iters) ...")
        trainer.train_diffusion(train)
        if tc.finetune_iters:
            log(f"fine-tuning to {cfg.diffusion.finetune_steps} "
                f"steps ...")
            trainer.finetune_diffusion(train)
        # build (and corrector-fit) the deployable compressor once,
        # then persist that same codec with the trainer's provenance
        # (what export_artifact records, without a second build)
        trained = LatentDiffusionCodec(
            compressor=trainer.build_compressor(train))
        training_meta = {**dataclasses.asdict(trainer.train_cfg),
                         "seed": trainer.seed}
        if save is not None:
            manifest = save_artifact(save, trained,
                                     training=training_meta,
                                     dataset=dataset_meta)
        else:
            manifest = self.store.put(trained, training=training_meta,
                                      dataset=dataset_meta)
        self._codecs[DEFAULT_CODEC] = trained
        return trained, manifest

    def _train_learned(self, name, frames, dataset_meta, save,
                       vae_iters, diffusion_iters, sr_iters, lam,
                       train_fraction, stride, window, corrector, seed,
                       log):
        """Generalized training path for the learned baseline codecs."""
        try:
            codec = get_codec(name, seed=seed)
        except TypeError:
            raise SessionError(
                f"codec {name!r} is model-free; there is nothing to "
                f"train") from None
        if not codec.capabilities.needs_training:
            raise SessionError(
                f"codec {name!r} is model-free; there is nothing to "
                f"train")
        window = codec.window if codec.window > 1 else window
        train, _ = train_test_windows(frames, window=window,
                                      train_fraction=train_fraction,
                                      stride=stride)
        # map the shared vocabulary onto each family's train() kwargs
        candidates = {"vae_iters": vae_iters,
                      "diffusion_iters": diffusion_iters,
                      "sr_iters": sr_iters, "lam": lam}
        accepted = inspect.signature(codec.impl.train).parameters
        kwargs = {k: v for k, v in candidates.items() if k in accepted}
        pretty = ", ".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
        log(f"training {name} on {len(train)} windows "
            f"({window} frames each): {pretty} ...")
        codec.train(train, **kwargs)
        if corrector:
            log("fitting error-bound corrector ...")
            codec.fit_corrector(train)
        training_meta = {**kwargs, "seed": seed, "window": window,
                         "corrector": bool(corrector)}
        if save is not None:
            manifest = save_artifact(save, codec, training=training_meta,
                                     dataset=dataset_meta)
        else:
            manifest = self.store.put(codec, training=training_meta,
                                      dataset=dataset_meta)
        self._codecs[codec.name] = codec
        return codec, manifest

    # -- info -----------------------------------------------------------
    def info(self, path: Union[str, os.PathLike]) -> dict:
        """Inspect a compressed container or a model ``.npz``.

        Returns ``{"kind": ..., ...}`` — an archive's
        :meth:`Archive.describe` output, or ``kind="artifact"`` with
        the provenance manifest, or ``kind="bundle"`` for legacy
        pre-manifest model bundles.
        """
        path = os.fspath(path)
        with open(path, "rb") as fh:
            head = fh.read(4)
        if head != _NPZ_MAGIC:
            # lazy open: indexed archives describe themselves from
            # header + footer reads without slurping the body
            return Archive.open(path).describe()
        if is_artifact(path):
            return {"kind": "artifact", "manifest": read_manifest(path)}
        with np.load(path) as npz:
            if "config_json" in npz.files:
                arrays = [k for k in npz.files if k != "config_json"]
                return {"kind": "bundle", "state_arrays": len(arrays)}
        raise SessionError(".npz file is neither a model artifact nor "
                           "a legacy bundle")
