"""DPM-Solver++(2M) sampler for keyframe-conditioned generation.

A second-order multistep ODE solver (Lu et al.) over the model's
probability-flow ODE.  Where DDIM is the first-order exponential
integrator, DPM-Solver++(2M) reuses the previous step's clean-signal
prediction to cancel the leading error term — at *zero* extra network
evaluations — which typically buys DDIM-quality samples in roughly half
the steps.  Included as an ablation against the paper's protocol
(fine-tune the model to a short ancestral chain): see
``benchmarks/bench_ablations.py``.

Notation (VP diffusion): ``α_t = sqrt(ᾱ_t)``, ``σ_t = sqrt(1 − ᾱ_t)``,
log-SNR ``λ_t = log(α_t / σ_t)``.  The data-prediction update from
``s`` to ``t`` with ``h = λ_t − λ_s`` is::

    y_t = (σ_t / σ_s) y_s − α_t (e^{−h} − 1) D

where ``D`` is the (possibly extrapolated) clean-signal estimate.  As
everywhere else in this package, the clean keyframe latents are
spliced back in after every update so conditioning never degrades.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .conditioning import KeyframeSpec, splice
from .ddpm import ConditionalDDPM
from .sampler import DEFAULT_CLIP, _init_window

__all__ = ["dpm_solver_sample"]


def _lambda(alpha_bar: float) -> float:
    """log-SNR ``λ = log(α/σ) = 0.5 log(ᾱ / (1−ᾱ))``."""
    ab = min(max(alpha_bar, 1e-12), 1.0 - 1e-12)
    return 0.5 * math.log(ab / (1.0 - ab))


def dpm_solver_sample(model: ConditionalDDPM, cond_window: np.ndarray,
                      spec: KeyframeSpec, steps: int,
                      rng: Optional[np.random.Generator] = None,
                      clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                      ) -> np.ndarray:
    """DPM-Solver++(2M) over ``steps`` spaced timesteps.

    Parameters mirror :func:`repro.diffusion.sampler.ddim_sample`; the
    final update jumps straight to the clean estimate (``t = 0``).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = rng or np.random.default_rng(0)
    sched = model.schedule
    ts = sched.spaced_timesteps(steps)
    y = _init_window(cond_window, spec, rng)

    def x0_at(y_t: np.ndarray, t: int) -> np.ndarray:
        eps_hat = model.predict_noise(y_t, t)
        x0 = sched.predict_x0(y_t, t, eps_hat)
        if clip_x0 is not None:
            x0 = np.clip(x0, clip_x0[0], clip_x0[1])
        return x0

    prev_x0: Optional[np.ndarray] = None
    prev_h: Optional[float] = None
    for i, t in enumerate(ts):
        t = int(t)
        x0 = x0_at(y, t)
        t_next = int(ts[i + 1]) if i + 1 < len(ts) else 0
        if t_next == 0:
            y = splice(x0, cond_window, spec)
            break
        ab_s = sched.alpha_bar(t)
        ab_t = sched.alpha_bar(t_next)
        lam_s, lam_t = _lambda(ab_s), _lambda(ab_t)
        h = lam_t - lam_s
        sigma_s = math.sqrt(1.0 - ab_s)
        sigma_t = math.sqrt(1.0 - ab_t)
        alpha_t = math.sqrt(ab_t)

        if prev_x0 is None or prev_h is None or prev_h == 0.0:
            d = x0  # first step: first-order (DPM-Solver++(1) == DDIM)
        else:
            r = prev_h / h
            d = (1.0 + 1.0 / (2.0 * r)) * x0 - (1.0 / (2.0 * r)) * prev_x0
        y = (sigma_t / sigma_s) * y - alpha_t * math.expm1(-h) * d
        y = splice(y, cond_window, spec)
        prev_x0, prev_h = x0, h
    return y
