"""Conditional DDPM training objective (Eq. 7 / Algorithm 1).

The model receives the *entire* latent window: noise is applied only to
the generated-frame subset ``G``, the keyframe subset ``C`` is spliced
in clean, and the loss penalizes the noise estimate on ``G`` frames
only — exactly the conditioning mechanism of Sec. 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import DiffusionConfig
from ..nn import Module, Tensor, no_grad
from ..nn import functional as F
from .conditioning import KeyframeSpec, splice
from .schedule import NoiseSchedule
from .unet import DenoisingUNet

__all__ = ["ConditionalDDPM"]


class ConditionalDDPM(Module):
    """Denoising UNet + schedule + keyframe-conditioned loss."""

    def __init__(self, cfg: DiffusionConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cfg = cfg
        self.unet = DenoisingUNet(cfg, rng=rng)
        self.schedule = NoiseSchedule(cfg.train_steps, cfg.beta_schedule)

    def set_schedule(self, steps: int) -> None:
        """Swap the diffusion length (used by few-step fine-tuning)."""
        self.schedule = NoiseSchedule(steps, self.cfg.beta_schedule)

    # ------------------------------------------------------------------
    def training_loss(self, y0: np.ndarray, spec: KeyframeSpec,
                      rng: np.random.Generator,
                      t: Optional[int] = None) -> Tensor:
        """One Algorithm-1 step: returns the scalar loss tensor.

        Parameters
        ----------
        y0:
            Normalized latent window ``(B, N, C, H, W)`` (``y_0^N``).
        spec:
            Conditioning/generation partition.
        rng:
            Noise source (timestep draw + Gaussian noise).
        t:
            Optional fixed timestep (for tests); otherwise sampled
            uniformly from ``{1..T}`` as in the paper.
        """
        y0 = np.asarray(y0, dtype=np.float64)
        B, N = y0.shape[0], y0.shape[1]
        if N != spec.n:
            raise ValueError(f"window length {N} != spec.n {spec.n}")
        if t is None:
            t = int(rng.integers(1, self.schedule.steps + 1))
        eps = rng.standard_normal(y0.shape)
        y_t_gen = self.schedule.q_sample(y0, t, eps)      # noised everywhere
        y_t = splice(y_t_gen, y0, spec)                   # keyframes clean
        eps_hat = self.unet(Tensor(y_t), t)
        # read-only broadcast view is fine: the mask is only multiplied
        mask = Tensor(np.broadcast_to(spec.gen_mask(y0.shape), y0.shape))
        diff = (eps_hat - Tensor(eps)) * mask
        n_gen = B * spec.num_gen * int(np.prod(y0.shape[2:]))
        return F.sum(diff * diff) * (1.0 / n_gen)

    # ------------------------------------------------------------------
    def predict_noise(self, y_t: np.ndarray, t: int) -> np.ndarray:
        """Inference-time ε̂ for a (spliced) window."""
        if type(y_t) is not np.ndarray or y_t.dtype != np.float64:
            y_t = np.asarray(y_t, dtype=np.float64)
        with no_grad():
            out = self.unet(Tensor(y_t), t)
        return out.numpy()
