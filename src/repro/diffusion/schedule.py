"""Noise schedules and forward-process arithmetic (Eqs. 3-4).

``NoiseSchedule`` precomputes every per-step quantity the training loss
and the samplers need.  Timesteps are 1-based as in the paper
(``t ∈ {1, …, T}``); index 0 of the internal arrays corresponds to
``t = 1``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = ["NoiseSchedule", "linear_betas", "cosine_betas"]


def linear_betas(steps: int, beta_start: float = 1e-4,
                 beta_end: float = 0.02, ref_steps: int = 1000) -> np.ndarray:
    """DDPM linear schedule, shortened by ᾱ-curve subsampling.

    For ``steps == ref_steps`` this is the classic (1e-4, 0.02) ramp.
    Shorter chains sample the *reference* cumulative-noise curve ᾱ at
    ``steps`` evenly spaced positions and re-derive betas via
    ``β_t = 1 - ᾱ_t / ᾱ_{t-1}``.  The endpoint noise level therefore
    matches the 1000-step schedule exactly — naive beta rescaling would
    push ``β_T -> 1`` and make ``1/sqrt(ᾱ_T)`` blow up, which is what
    breaks direct training at {128, 32, 8, 2, 1} steps (Sec. 4.6).
    """
    if steps >= ref_steps:
        return np.linspace(beta_start, beta_end, steps)
    ref = np.linspace(beta_start, beta_end, ref_steps)
    ab_ref = np.cumprod(1.0 - ref)
    pos = np.linspace(0, ref_steps - 1, steps).round().astype(int)
    ab = ab_ref[pos]
    prev = np.concatenate([[1.0], ab[:-1]])
    betas = 1.0 - ab / prev
    return np.clip(betas, 1e-8, 0.999)


def cosine_betas(steps: int, s: float = 0.008) -> np.ndarray:
    """Nichol & Dhariwal cosine schedule."""
    ts = np.linspace(0, 1, steps + 1)
    f = np.cos((ts + s) / (1 + s) * math.pi / 2) ** 2
    alpha_bar = f / f[0]
    betas = 1.0 - alpha_bar[1:] / alpha_bar[:-1]
    return np.clip(betas, 0.0, 0.999)


class NoiseSchedule:
    """Precomputed forward/reverse process constants for ``T`` steps."""

    def __init__(self, steps: int, kind: str = "linear"):
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if kind == "linear":
            betas = linear_betas(steps)
        elif kind == "cosine":
            betas = cosine_betas(steps)
        else:
            raise ValueError(f"unknown schedule kind {kind!r}")
        self.steps = steps
        self.kind = kind
        self.betas = betas
        self.alphas = 1.0 - betas
        self.alpha_bars = np.cumprod(self.alphas)
        self.sqrt_alpha_bars = np.sqrt(self.alpha_bars)
        self.sqrt_one_minus_alpha_bars = np.sqrt(1.0 - self.alpha_bars)
        prev = np.concatenate([[1.0], self.alpha_bars[:-1]])
        self.alpha_bars_prev = prev
        # DDPM posterior variance \tilde beta_t
        self.posterior_variance = (
            betas * (1.0 - prev) / np.maximum(1.0 - self.alpha_bars, 1e-12))
        # Per-step scalars of the posterior mean / predict_x0, hoisted so
        # the samplers touch no per-call scalar arithmetic.  Each entry
        # replicates the former inline expression op-for-op (same
        # multiply/divide order), so sampling output is bit-identical.
        denom = np.maximum(1.0 - self.alpha_bars, 1e-12)
        self.posterior_coef_x0 = np.sqrt(prev) * betas / denom
        self.posterior_coef_yt = np.sqrt(self.alphas) * (1.0 - prev) / denom
        self.posterior_sigma = np.sqrt(self.posterior_variance)
        self.predict_x0_denom = np.maximum(self.sqrt_alpha_bars, 1e-12)

    # -- 1-based step accessors -----------------------------------------
    def _idx(self, t: int) -> int:
        if not (1 <= t <= self.steps):
            raise ValueError(f"t={t} outside [1, {self.steps}]")
        return t - 1

    def alpha_bar(self, t: int) -> float:
        return float(self.alpha_bars[self._idx(t)])

    def q_sample(self, y0: np.ndarray, t: int,
                 eps: np.ndarray) -> np.ndarray:
        """Forward jump (Eq. 4): ``y_t = sqrt(ᾱ_t) y_0 + sqrt(1-ᾱ_t) ε``."""
        i = self._idx(t)
        return (self.sqrt_alpha_bars[i] * y0
                + self.sqrt_one_minus_alpha_bars[i] * eps)

    def predict_x0(self, y_t: np.ndarray, t: int,
                   eps_hat: np.ndarray) -> np.ndarray:
        """Invert Eq. 4 to estimate the clean signal from ε̂."""
        i = self._idx(t)
        return ((y_t - self.sqrt_one_minus_alpha_bars[i] * eps_hat)
                / self.predict_x0_denom[i])

    def posterior_step(self, y_t: np.ndarray, t: int, eps_hat: np.ndarray,
                       noise: Optional[np.ndarray],
                       clip_x0: Optional[Tuple[float, float]] = None
                       ) -> np.ndarray:
        """One ancestral reverse step ``y_t -> y_{t-1}`` (DDPM).

        ``clip_x0`` optionally clamps the implied clean-signal estimate
        before forming the posterior mean — the standard stabilizer for
        samplers operating in a bounded (min-max normalized) space.
        ``noise`` may be ``None`` at ``t == 1``, where it is unused.
        """
        i = self._idx(t)
        x0 = self.predict_x0(y_t, t, eps_hat)
        if clip_x0 is not None:
            x0 = np.clip(x0, clip_x0[0], clip_x0[1])
        mean = (self.posterior_coef_x0[i] * x0
                + self.posterior_coef_yt[i] * y_t)
        if t == 1:
            return mean
        return mean + self.posterior_sigma[i] * noise

    def ddim_step(self, y_t: np.ndarray, t: int, t_prev: int,
                  eps_hat: np.ndarray,
                  clip_x0: Optional[Tuple[float, float]] = None
                  ) -> np.ndarray:
        """Deterministic DDIM step ``y_t -> y_{t_prev}`` (η = 0).

        ``t_prev`` may be 0, meaning "jump to the clean sample".  With
        ``clip_x0`` the implied noise direction is recomputed from the
        clamped estimate so the update stays on-manifold.
        """
        i = self._idx(t)
        x0 = self.predict_x0(y_t, t, eps_hat)
        if clip_x0 is not None:
            x0 = np.clip(x0, clip_x0[0], clip_x0[1])
            eps_hat = ((y_t - self.sqrt_alpha_bars[i] * x0)
                       / max(self.sqrt_one_minus_alpha_bars[i], 1e-12))
        if t_prev == 0:
            return x0
        j = self._idx(t_prev)
        return (self.sqrt_alpha_bars[j] * x0
                + self.sqrt_one_minus_alpha_bars[j] * eps_hat)

    def spaced_timesteps(self, num: int) -> np.ndarray:
        """Descending sub-sequence of timesteps for few-step sampling."""
        num = min(num, self.steps)
        ts = np.unique(np.linspace(1, self.steps, num).round().astype(int))
        return ts[::-1]
