"""Exponential moving average of model weights.

Diffusion models are conventionally *sampled* from an exponential
moving average of the training weights rather than the raw iterates —
the EMA smooths SGD noise and reliably improves sample quality for
free.  The paper does not spell out its averaging, but its reference
implementations ([15] video diffusion; [34] latent diffusion) all ship
EMA, so the trainer exposes it as an opt-in
(:class:`~repro.pipeline.training.TrainingConfig` ``ema_decay``).

Usage::

    ema = EMA(model, decay=0.999)
    for step in ...:
        ...optimizer.step()
        ema.update()
    with ema.average_parameters():   # sample/eval with averaged weights
        ...
    # or permanently adopt them:
    ema.copy_to()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from ..nn import Module

__all__ = ["EMA"]


class EMA:
    """Shadow-weight tracker for a :class:`~repro.nn.Module`.

    Parameters
    ----------
    module:
        The model whose parameters to track (by name).
    decay:
        Per-update decay; the effective averaging horizon is roughly
        ``1 / (1 - decay)`` steps.  A warmup ramp
        ``min(decay, (1 + n) / (10 + n))`` keeps early averages from
        being dominated by the random initialization.
    """

    def __init__(self, module: Module, decay: float = 0.999,
                 warmup: bool = True):
        if not (0.0 < decay < 1.0):
            raise ValueError("decay must be in (0, 1)")
        self.module = module
        self.decay = decay
        self.warmup = warmup
        self.num_updates = 0
        self.shadow: Dict[str, np.ndarray] = {
            name: p.data.copy() for name, p in module.named_parameters()}

    # ------------------------------------------------------------------
    def _effective_decay(self) -> float:
        if not self.warmup:
            return self.decay
        n = self.num_updates
        return min(self.decay, (1.0 + n) / (10.0 + n))

    def update(self) -> None:
        """Fold the module's current weights into the shadow average."""
        d = self._effective_decay()
        self.num_updates += 1
        for name, p in self.module.named_parameters():
            shadow = self.shadow[name]
            # in-place: shadow = d * shadow + (1 - d) * param
            shadow *= d
            shadow += (1.0 - d) * p.data

    # ------------------------------------------------------------------
    def copy_to(self, module: Optional[Module] = None) -> None:
        """Overwrite ``module`` weights with the shadow average."""
        module = module or self.module
        for name, p in module.named_parameters():
            if name not in self.shadow:
                raise KeyError(f"no shadow entry for parameter {name!r}")
            p.data[...] = self.shadow[name]

    @contextmanager
    def average_parameters(self):
        """Temporarily swap the averaged weights in (restore on exit)."""
        backup = {name: p.data.copy()
                  for name, p in self.module.named_parameters()}
        self.copy_to()
        try:
            yield self.module
        finally:
            for name, p in self.module.named_parameters():
                p.data[...] = backup[name]

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {f"shadow.{k}": v.copy() for k, v in self.shadow.items()}
        state["num_updates"] = np.array(self.num_updates)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.num_updates = int(state["num_updates"])
        for key, value in state.items():
            if key.startswith("shadow."):
                name = key[len("shadow."):]
                if name not in self.shadow:
                    raise KeyError(f"unexpected shadow entry {name!r}")
                if self.shadow[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{self.shadow[name].shape} vs {value.shape}")
                self.shadow[name] = value.copy()
