"""Sinusoidal timestep embeddings (transformer-style)."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sinusoidal_embedding"]


def sinusoidal_embedding(t: np.ndarray, dim: int,
                         max_period: float = 10_000.0) -> np.ndarray:
    """Embed integer timesteps ``t`` (shape ``(B,)``) into ``(B, dim)``.

    Half the channels carry sines, half cosines, with log-spaced
    frequencies — the standard encoding used by diffusion UNets.
    """
    if dim % 2:
        raise ValueError("embedding dim must be even")
    t = np.asarray(t, dtype=np.float64).reshape(-1)
    half = dim // 2
    freqs = np.exp(-math.log(max_period) * np.arange(half) / half)
    args = t[:, None] * freqs[None, :]
    return np.concatenate([np.sin(args), np.cos(args)], axis=1)
