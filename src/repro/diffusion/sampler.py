"""Reverse-process samplers for keyframe-conditioned generation.

Decompression starts "from a noisy input (except for the keyframes
themselves) and progressively performs denoising to generate plausible
intermediate frames" (Sec. 1).  After every denoising update the clean
keyframe latents are spliced back in, so the conditioning information
never degrades.

Two samplers are provided:

* :func:`ancestral_sample` — the stochastic DDPM chain over all ``T``
  steps of the model's schedule;
* :func:`ddim_sample` — the deterministic DDIM chain over a spaced
  subset of steps, which is how the fine-tuned few-step models decode
  quickly (Sec. 4.6, Table 2).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .conditioning import KeyframeSpec, splice
from .ddpm import ConditionalDDPM

__all__ = ["ancestral_sample", "ddim_sample", "generate_latents",
           "ancestral_sample_batched", "ddim_sample_batched",
           "generate_latents_batched", "DEFAULT_CLIP"]

#: Clean-signal clamp used during sampling.  The pipeline min-max
#: normalizes latent windows to [-1, 1] from the *keyframe* latents, so
#: generated frames may legitimately exceed the box slightly; a 1.5
#: margin stabilizes undertrained models without biasing trained ones.
DEFAULT_CLIP: Tuple[float, float] = (-1.5, 1.5)


def _init_window(cond_window: np.ndarray, spec: KeyframeSpec,
                 rng: np.random.Generator) -> np.ndarray:
    """Start state: Gaussian noise on G frames, keyframes clean."""
    noise = rng.standard_normal(cond_window.shape)
    return splice(noise, cond_window, spec)


def ancestral_sample(model: ConditionalDDPM, cond_window: np.ndarray,
                     spec: KeyframeSpec,
                     rng: Optional[np.random.Generator] = None,
                     clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                     ) -> np.ndarray:
    """Full-length stochastic reverse process.

    ``cond_window`` is a ``(B, N, C, H, W)`` array whose keyframe
    entries hold the decoded keyframe latents (other entries are
    ignored).
    """
    rng = rng or np.random.default_rng(0)
    sched = model.schedule
    y = _init_window(cond_window, spec, rng)
    for t in range(sched.steps, 0, -1):
        eps_hat = model.predict_noise(y, t)
        noise = rng.standard_normal(y.shape) if t > 1 else np.zeros_like(y)
        y_next = sched.posterior_step(y, t, eps_hat, noise, clip_x0=clip_x0)
        y = splice(y_next, cond_window, spec)
    return y


def ddim_sample(model: ConditionalDDPM, cond_window: np.ndarray,
                spec: KeyframeSpec, steps: int,
                rng: Optional[np.random.Generator] = None,
                clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                ) -> np.ndarray:
    """Deterministic DDIM chain over ``steps`` spaced timesteps."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = rng or np.random.default_rng(0)
    sched = model.schedule
    ts = sched.spaced_timesteps(steps)
    y = _init_window(cond_window, spec, rng)
    for i, t in enumerate(ts):
        t_prev = int(ts[i + 1]) if i + 1 < len(ts) else 0
        eps_hat = model.predict_noise(y, int(t))
        y_next = sched.ddim_step(y, int(t), t_prev, eps_hat, clip_x0=clip_x0)
        y = splice(y_next, cond_window, spec)
    return y


def _init_windows_batched(cond_windows: np.ndarray, spec: KeyframeSpec,
                          rngs: Sequence[np.random.Generator]) -> np.ndarray:
    """Batched start state, one independent noise stream per window.

    Each window's generator draws exactly the values (and in the order)
    the per-window :func:`_init_window` would, so the stacked start
    state is bit-for-bit the ``W`` sequential ones.  The full batched
    *chain* matches a sequential run only to BLAS rounding (GEMM
    summation order depends on the batch extent, ~1e-15 per step).
    """
    noise = np.empty_like(cond_windows)
    for b, rng in enumerate(rngs):
        noise[b] = rng.standard_normal(cond_windows.shape[1:])
    return splice(noise, cond_windows, spec)


def ancestral_sample_batched(model: ConditionalDDPM,
                             cond_windows: np.ndarray, spec: KeyframeSpec,
                             rngs: Sequence[np.random.Generator],
                             clip_x0: Optional[Tuple[float, float]]
                             = DEFAULT_CLIP) -> np.ndarray:
    """Stochastic reverse process over ``W`` stacked windows at once.

    ``cond_windows`` is ``(W, N, C, H, W')`` with one rng per window;
    the UNet runs a single batched forward per step, amortizing model
    overhead across the whole shard sweep.  The per-step noise buffer is
    reused across steps (``standard_normal(out=...)``).
    """
    cond_windows = np.asarray(cond_windows, dtype=np.float64)
    if len(rngs) != cond_windows.shape[0]:
        raise ValueError(
            f"need {cond_windows.shape[0]} rngs, got {len(rngs)}")
    sched = model.schedule
    y = _init_windows_batched(cond_windows, spec, rngs)
    noise = np.empty_like(y)
    for t in range(sched.steps, 0, -1):
        eps_hat = model.predict_noise(y, t)
        if t > 1:
            for b, rng in enumerate(rngs):
                rng.standard_normal(out=noise[b])
            y_next = sched.posterior_step(y, t, eps_hat, noise,
                                          clip_x0=clip_x0)
        else:
            y_next = sched.posterior_step(y, t, eps_hat, None,
                                          clip_x0=clip_x0)
        y = splice(y_next, cond_windows, spec)
    return y


def ddim_sample_batched(model: ConditionalDDPM, cond_windows: np.ndarray,
                        spec: KeyframeSpec, steps: int,
                        rngs: Sequence[np.random.Generator],
                        clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                        ) -> np.ndarray:
    """Deterministic DDIM chain over ``W`` stacked windows at once."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    cond_windows = np.asarray(cond_windows, dtype=np.float64)
    if len(rngs) != cond_windows.shape[0]:
        raise ValueError(
            f"need {cond_windows.shape[0]} rngs, got {len(rngs)}")
    sched = model.schedule
    ts = sched.spaced_timesteps(steps)
    y = _init_windows_batched(cond_windows, spec, rngs)
    for i, t in enumerate(ts):
        t_prev = int(ts[i + 1]) if i + 1 < len(ts) else 0
        eps_hat = model.predict_noise(y, int(t))
        y_next = sched.ddim_step(y, int(t), t_prev, eps_hat, clip_x0=clip_x0)
        y = splice(y_next, cond_windows, spec)
    return y


def generate_latents_batched(model: ConditionalDDPM,
                             cond_windows: np.ndarray, spec: KeyframeSpec,
                             sampler: str = "ddim",
                             steps: Optional[int] = None,
                             rngs: Sequence[np.random.Generator] = ()
                             ) -> np.ndarray:
    """Batched twin of :func:`generate_latents` for stacked windows.

    Samplers without a batched formulation (``dpm``) fall back to the
    sequential per-window loop, which is bit-identical by construction.
    """
    cond_windows = np.asarray(cond_windows, dtype=np.float64)
    if sampler == "ancestral":
        return ancestral_sample_batched(model, cond_windows, spec, rngs)
    if sampler == "ddim":
        n = steps if steps is not None else model.schedule.steps
        return ddim_sample_batched(model, cond_windows, spec, n, rngs)
    outs = [generate_latents(model, cond_windows[b:b + 1], spec,
                             sampler=sampler, steps=steps, rng=rngs[b])
            for b in range(cond_windows.shape[0])]
    return np.concatenate(outs, axis=0)


def generate_latents(model: ConditionalDDPM, cond_window: np.ndarray,
                     spec: KeyframeSpec, sampler: str = "ddim",
                     steps: Optional[int] = None,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Dispatch helper used by the pipeline.

    ``steps`` defaults to the model's full schedule length.
    """
    if sampler == "ancestral":
        return ancestral_sample(model, cond_window, spec, rng=rng)
    if sampler == "ddim":
        n = steps if steps is not None else model.schedule.steps
        return ddim_sample(model, cond_window, spec, n, rng=rng)
    if sampler == "dpm":
        from .dpm_solver import dpm_solver_sample
        n = steps if steps is not None else model.schedule.steps
        return dpm_solver_sample(model, cond_window, spec, n, rng=rng)
    raise ValueError(f"unknown sampler {sampler!r}")
