"""Reverse-process samplers for keyframe-conditioned generation.

Decompression starts "from a noisy input (except for the keyframes
themselves) and progressively performs denoising to generate plausible
intermediate frames" (Sec. 1).  After every denoising update the clean
keyframe latents are spliced back in, so the conditioning information
never degrades.

Two samplers are provided:

* :func:`ancestral_sample` — the stochastic DDPM chain over all ``T``
  steps of the model's schedule;
* :func:`ddim_sample` — the deterministic DDIM chain over a spaced
  subset of steps, which is how the fine-tuned few-step models decode
  quickly (Sec. 4.6, Table 2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .conditioning import KeyframeSpec, splice
from .ddpm import ConditionalDDPM

__all__ = ["ancestral_sample", "ddim_sample", "generate_latents",
           "DEFAULT_CLIP"]

#: Clean-signal clamp used during sampling.  The pipeline min-max
#: normalizes latent windows to [-1, 1] from the *keyframe* latents, so
#: generated frames may legitimately exceed the box slightly; a 1.5
#: margin stabilizes undertrained models without biasing trained ones.
DEFAULT_CLIP: Tuple[float, float] = (-1.5, 1.5)


def _init_window(cond_window: np.ndarray, spec: KeyframeSpec,
                 rng: np.random.Generator) -> np.ndarray:
    """Start state: Gaussian noise on G frames, keyframes clean."""
    noise = rng.standard_normal(cond_window.shape)
    return splice(noise, cond_window, spec)


def ancestral_sample(model: ConditionalDDPM, cond_window: np.ndarray,
                     spec: KeyframeSpec,
                     rng: Optional[np.random.Generator] = None,
                     clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                     ) -> np.ndarray:
    """Full-length stochastic reverse process.

    ``cond_window`` is a ``(B, N, C, H, W)`` array whose keyframe
    entries hold the decoded keyframe latents (other entries are
    ignored).
    """
    rng = rng or np.random.default_rng(0)
    sched = model.schedule
    y = _init_window(cond_window, spec, rng)
    for t in range(sched.steps, 0, -1):
        eps_hat = model.predict_noise(y, t)
        noise = rng.standard_normal(y.shape) if t > 1 else np.zeros_like(y)
        y_next = sched.posterior_step(y, t, eps_hat, noise, clip_x0=clip_x0)
        y = splice(y_next, cond_window, spec)
    return y


def ddim_sample(model: ConditionalDDPM, cond_window: np.ndarray,
                spec: KeyframeSpec, steps: int,
                rng: Optional[np.random.Generator] = None,
                clip_x0: Optional[Tuple[float, float]] = DEFAULT_CLIP
                ) -> np.ndarray:
    """Deterministic DDIM chain over ``steps`` spaced timesteps."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = rng or np.random.default_rng(0)
    sched = model.schedule
    ts = sched.spaced_timesteps(steps)
    y = _init_window(cond_window, spec, rng)
    for i, t in enumerate(ts):
        t_prev = int(ts[i + 1]) if i + 1 < len(ts) else 0
        eps_hat = model.predict_noise(y, int(t))
        y_next = sched.ddim_step(y, int(t), t_prev, eps_hat, clip_x0=clip_x0)
        y = splice(y_next, cond_window, spec)
    return y


def generate_latents(model: ConditionalDDPM, cond_window: np.ndarray,
                     spec: KeyframeSpec, sampler: str = "ddim",
                     steps: Optional[int] = None,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Dispatch helper used by the pipeline.

    ``steps`` defaults to the model's full schedule length.
    """
    if sampler == "ancestral":
        return ancestral_sample(model, cond_window, spec, rng=rng)
    if sampler == "ddim":
        n = steps if steps is not None else model.schedule.steps
        return ddim_sample(model, cond_window, spec, n, rng=rng)
    if sampler == "dpm":
        from .dpm_solver import dpm_solver_sample
        n = steps if steps is not None else model.schedule.steps
        return dpm_solver_sample(model, cond_window, spec, n, rng=rng)
    raise ValueError(f"unknown sampler {sampler!r}")
