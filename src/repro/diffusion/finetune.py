"""Few-step fine-tuning protocol (Sec. 4.6 / Fig. 5).

"Training directly with smaller denoising steps leads to poor feature
learning and noisy predictions.  We found that training with larger
denoising steps, followed by fine-tuning with smaller steps, achieves
similar performance" — so: train at ``T_large`` (1000 in the paper),
then call :func:`finetune_steps` to swap the schedule to ``T_small``
({128, 32, 8, 2, 1}) and continue optimizing briefly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..nn.optim import Adam, clip_grad_norm
from .conditioning import KeyframeSpec
from .ddpm import ConditionalDDPM

__all__ = ["finetune_steps"]


def finetune_steps(model: ConditionalDDPM, new_steps: int,
                   batches: Iterable[np.ndarray], spec: KeyframeSpec,
                   lr: float = 1e-4, rng: Optional[np.random.Generator] = None,
                   grad_clip: float = 1.0,
                   on_step: Optional[Callable[[int, float], None]] = None
                   ) -> ConditionalDDPM:
    """Fine-tune ``model`` in place at a shorter schedule.

    Parameters
    ----------
    model:
        A :class:`ConditionalDDPM` pre-trained at a longer schedule.
    new_steps:
        Target denoising-step count (the paper uses 32 for deployment).
    batches:
        Iterable of latent windows ``(B, N, C, H, W)``; its length
        determines the number of fine-tuning iterations.
    spec:
        Keyframe partition to train against.
    on_step:
        Optional callback ``(iteration, loss)`` for logging.
    """
    if new_steps < 1:
        raise ValueError("new_steps must be >= 1")
    rng = rng or np.random.default_rng(0)
    model.set_schedule(new_steps)
    opt = Adam(model.parameters(), lr=lr)
    for i, batch in enumerate(batches):
        opt.zero_grad()
        loss = model.training_loss(batch, spec, rng)
        loss.backward()
        clip_grad_norm(model.parameters(), grad_clip)
        opt.step()
        if on_step is not None:
            on_step(i, loss.item())
    return model
