"""``repro.diffusion`` — stage-2 conditional latent diffusion (Sec. 3.2-3.4).

* :mod:`repro.diffusion.schedule` — beta schedules and forward-process
  math (Eqs. 3-4);
* :mod:`repro.diffusion.embeddings` — sinusoidal timestep embeddings;
* :mod:`repro.diffusion.unet` — the factorized space-time attention
  denoising UNet;
* :mod:`repro.diffusion.conditioning` — keyframe index strategies and
  the ``⊕`` splice operator (Sec. 3.3);
* :mod:`repro.diffusion.ddpm` — the conditional training objective
  (Eq. 7 / Algorithm 1);
* :mod:`repro.diffusion.sampler` — ancestral and DDIM reverse processes;
* :mod:`repro.diffusion.dpm_solver` — DPM-Solver++(2M) multistep sampler;
* :mod:`repro.diffusion.parameterization` — ε / x0 / v prediction targets;
* :mod:`repro.diffusion.ema` — exponential-moving-average weights;
* :mod:`repro.diffusion.finetune` — the train-large/fine-tune-small
  denoising-step protocol (Sec. 4.6).
"""

from .conditioning import (KeyframeSpec, interpolation_keyframes,
                           keyframe_spec, mixed_keyframes,
                           prediction_keyframes, splice)
from .ddpm import ConditionalDDPM
from .dpm_solver import dpm_solver_sample
from .ema import EMA
from .embeddings import sinusoidal_embedding
from .finetune import finetune_steps
from .parameterization import PARAMETERIZATIONS, ParameterizedDDPM
from .sampler import (ddim_sample, ancestral_sample, generate_latents,
                      ddim_sample_batched, ancestral_sample_batched,
                      generate_latents_batched)
from .schedule import NoiseSchedule

__all__ = [
    "NoiseSchedule", "sinusoidal_embedding", "ConditionalDDPM",
    "KeyframeSpec", "keyframe_spec", "interpolation_keyframes",
    "prediction_keyframes", "mixed_keyframes", "splice",
    "ancestral_sample", "ddim_sample", "dpm_solver_sample",
    "generate_latents", "ancestral_sample_batched", "ddim_sample_batched",
    "generate_latents_batched", "finetune_steps",
    "ParameterizedDDPM", "PARAMETERIZATIONS", "EMA",
]
