"""Keyframe index strategies and the ``⊕`` splice operator (Sec. 3.3).

The paper partitions a window of ``N`` frames into conditioning indices
``C`` (keyframes, stored) and generated indices ``G`` (reconstructed by
the diffusion model), with ``C ∪ G = {1..N}`` and ``C ∩ G = ∅``, and
defines the splice::

    (a_G ⊕ b_C)_i = a_i if i ∈ G else b_i

Three selection strategies are evaluated (Sec. 4.4, Fig. 2):
interpolation (uniform keyframes), prediction (leading keyframes) and
mixed (leading keyframes plus the final frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

from ..nn import Tensor, as_tensor
from ..nn import functional as F

__all__ = ["interpolation_keyframes", "prediction_keyframes",
           "mixed_keyframes", "KeyframeSpec", "keyframe_spec", "splice"]


def interpolation_keyframes(n: int, interval: int) -> np.ndarray:
    """Uniformly spaced keyframes: ``{0, interval, 2*interval, …}``.

    For ``n=16, interval=3`` this yields the paper's
    ``C = {1, 4, 7, 10, 13, 16}`` (1-based).  The last frame is always
    included so generated frames are interpolated, never extrapolated.
    """
    if interval < 1:
        raise ValueError("interval must be >= 1")
    idx = set(range(0, n, interval))
    idx.add(n - 1)
    return np.array(sorted(idx), dtype=np.int64)


def prediction_keyframes(n: int, k: int) -> np.ndarray:
    """Leading-block keyframes ``{0, …, k-1}`` (pure forecasting)."""
    if not (1 <= k <= n):
        raise ValueError(f"k={k} outside [1, {n}]")
    return np.arange(k, dtype=np.int64)


def mixed_keyframes(n: int, k: int) -> np.ndarray:
    """First ``k-1`` frames plus the final frame (paper's "mixed")."""
    if not (2 <= k <= n):
        raise ValueError(f"k={k} outside [2, {n}]")
    return np.concatenate([np.arange(k - 1), [n - 1]]).astype(np.int64)


@dataclass(frozen=True)
class KeyframeSpec:
    """Resolved partition of a window into ``C`` and ``G`` index sets."""

    n: int
    cond_idx: np.ndarray
    gen_idx: np.ndarray = field(init=False)

    def __post_init__(self):
        cond = np.unique(np.asarray(self.cond_idx, dtype=np.int64))
        if cond.size == 0:
            raise ValueError("at least one conditioning frame is required")
        if cond.min() < 0 or cond.max() >= self.n:
            raise ValueError(f"keyframe index outside [0, {self.n})")
        object.__setattr__(self, "cond_idx", cond)
        gen = np.setdiff1d(np.arange(self.n, dtype=np.int64), cond)
        object.__setattr__(self, "gen_idx", gen)

    @property
    def num_cond(self) -> int:
        return int(self.cond_idx.size)

    @property
    def num_gen(self) -> int:
        return int(self.gen_idx.size)

    def gen_mask(self, shape: Tuple[int, ...], frame_axis: int = 1
                 ) -> np.ndarray:
        """Binary mask (1 on generated frames) broadcastable to ``shape``."""
        mask_shape = [1] * len(shape)
        mask_shape[frame_axis] = self.n
        mask = np.zeros(self.n)
        mask[self.gen_idx] = 1.0
        return mask.reshape(mask_shape)


def keyframe_spec(n: int, strategy: str, interval: int = 3,
                  k: int = None) -> KeyframeSpec:
    """Build a :class:`KeyframeSpec` from a named strategy.

    ``interval`` drives the interpolation strategy; ``k`` (number of
    keyframes) drives prediction/mixed.  When ``k`` is omitted it
    defaults to the keyframe count the interpolation strategy would
    use, so the three strategies are storage-matched as in Fig. 2.
    """
    if strategy == "interpolation":
        return KeyframeSpec(n, interpolation_keyframes(n, interval))
    if k is None:
        k = interpolation_keyframes(n, interval).size
    if strategy == "prediction":
        return KeyframeSpec(n, prediction_keyframes(n, k))
    if strategy == "mixed":
        return KeyframeSpec(n, mixed_keyframes(n, k))
    raise ValueError(f"unknown keyframe strategy {strategy!r}")


ArrayOrTensor = Union[np.ndarray, Tensor]


def splice(generated: ArrayOrTensor, conditioning: ArrayOrTensor,
           spec: KeyframeSpec, frame_axis: int = 1) -> ArrayOrTensor:
    """The ``⊕`` operator: take ``G`` frames from the first argument and
    ``C`` frames from the second.

    Both inputs are *full-window* arrays/tensors of identical shape
    (this matches Algorithm 1, which keeps everything at window shape
    and only swaps content per frame).  Works on plain arrays and on
    autodiff tensors; in the latter case gradients flow to each input
    only through the frames it contributes.
    """
    if isinstance(generated, Tensor) or isinstance(conditioning, Tensor):
        g, c = as_tensor(generated), as_tensor(conditioning)
        if g.shape != c.shape:
            raise ValueError(f"shape mismatch: {g.shape} vs {c.shape}")
        mask = spec.gen_mask(g.shape, frame_axis)
        return g * mask + c * (1.0 - mask)
    g = np.asarray(generated)
    c = np.asarray(conditioning)
    if g.shape != c.shape:
        raise ValueError(f"shape mismatch: {g.shape} vs {c.shape}")
    mask = spec.gen_mask(g.shape, frame_axis)
    return g * mask + c * (1.0 - mask)
