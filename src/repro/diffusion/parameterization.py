"""Prediction parameterizations for the latent denoiser.

The paper's latent model predicts the added noise (ε-parameterization,
Eq. 5/7), while its CDC baseline is evaluated in both ε- and
X-parameterizations (Sec. 4.7: "CDC-X predicts the original signal
directly, and CDC-ε predicts the noise").  This module brings the same
choice — plus the v-parameterization of progressive distillation
(Salimans & Ho) — to the *latent* model, so the design decision can be
ablated inside our pipeline too (``bench_ablation_parameterization``).

All three targets are linear re-combinations of ``(y_0, ε)`` at a given
noise level::

    eps:  target = ε
    x0:   target = y_0
    v:    target = sqrt(ᾱ_t) ε − sqrt(1−ᾱ_t) y_0

:class:`ParameterizedDDPM` trains the UNet against the chosen target
and converts its output back to an ε̂ estimate at inference, so every
sampler in :mod:`repro.diffusion.sampler` works unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import DiffusionConfig
from ..nn import Tensor
from ..nn import functional as F
from .conditioning import KeyframeSpec, splice
from .ddpm import ConditionalDDPM

__all__ = ["ParameterizedDDPM", "eps_from_v", "x0_from_v", "v_target",
           "eps_from_x0", "PARAMETERIZATIONS"]

PARAMETERIZATIONS = ("eps", "x0", "v")


def v_target(y0: np.ndarray, eps: np.ndarray, sqrt_ab: float,
             sqrt_1mab: float) -> np.ndarray:
    """``v = sqrt(ᾱ) ε − sqrt(1−ᾱ) y_0``."""
    return sqrt_ab * eps - sqrt_1mab * y0


def eps_from_v(y_t: np.ndarray, v: np.ndarray, sqrt_ab: float,
               sqrt_1mab: float) -> np.ndarray:
    """``ε = sqrt(ᾱ) v + sqrt(1−ᾱ) y_t`` (inverts :func:`v_target`)."""
    return sqrt_ab * v + sqrt_1mab * y_t


def x0_from_v(y_t: np.ndarray, v: np.ndarray, sqrt_ab: float,
              sqrt_1mab: float) -> np.ndarray:
    """``y_0 = sqrt(ᾱ) y_t − sqrt(1−ᾱ) v``."""
    return sqrt_ab * y_t - sqrt_1mab * v


def eps_from_x0(y_t: np.ndarray, x0: np.ndarray, sqrt_ab: float,
                sqrt_1mab: float) -> np.ndarray:
    """Invert Eq. 4: ``ε = (y_t − sqrt(ᾱ) y_0) / sqrt(1−ᾱ)``."""
    return (y_t - sqrt_ab * x0) / max(sqrt_1mab, 1e-12)


class ParameterizedDDPM(ConditionalDDPM):
    """Conditional DDPM with a selectable prediction target.

    ``parameterization='eps'`` is numerically identical to the base
    :class:`~repro.diffusion.ddpm.ConditionalDDPM`.  For ``'x0'`` and
    ``'v'`` the network is trained against the alternative target;
    :meth:`predict_noise` converts back to ε̂, keeping the sampling
    code paths shared.
    """

    def __init__(self, cfg: DiffusionConfig, parameterization: str = "eps",
                 rng: Optional[np.random.Generator] = None):
        if parameterization not in PARAMETERIZATIONS:
            raise ValueError(
                f"parameterization must be one of {PARAMETERIZATIONS}, "
                f"got {parameterization!r}")
        super().__init__(cfg, rng=rng)
        self.parameterization = parameterization

    # ------------------------------------------------------------------
    def training_loss(self, y0: np.ndarray, spec: KeyframeSpec,
                      rng: np.random.Generator,
                      t: Optional[int] = None) -> Tensor:
        """Algorithm-1 step with the configured target (G frames only)."""
        y0 = np.asarray(y0, dtype=np.float64)
        B, N = y0.shape[0], y0.shape[1]
        if N != spec.n:
            raise ValueError(f"window length {N} != spec.n {spec.n}")
        if t is None:
            t = int(rng.integers(1, self.schedule.steps + 1))
        i = t - 1
        sqrt_ab = float(self.schedule.sqrt_alpha_bars[i])
        sqrt_1mab = float(self.schedule.sqrt_one_minus_alpha_bars[i])

        eps = rng.standard_normal(y0.shape)
        y_t_gen = self.schedule.q_sample(y0, t, eps)
        y_t = splice(y_t_gen, y0, spec)
        net_out = self.unet(Tensor(y_t), t)

        if self.parameterization == "eps":
            target = eps
        elif self.parameterization == "x0":
            target = y0
        else:  # v
            target = v_target(y0, eps, sqrt_ab, sqrt_1mab)

        # read-only broadcast view is fine: the mask is only multiplied
        mask = Tensor(np.broadcast_to(spec.gen_mask(y0.shape), y0.shape))
        diff = (net_out - Tensor(target)) * mask
        n_gen = B * spec.num_gen * int(np.prod(y0.shape[2:]))
        return F.sum(diff * diff) * (1.0 / n_gen)

    # ------------------------------------------------------------------
    def predict_noise(self, y_t: np.ndarray, t: int) -> np.ndarray:
        """ε̂ for a (spliced) window, whatever the trained target."""
        out = super().predict_noise(y_t, t)
        if self.parameterization == "eps":
            return out
        i = t - 1
        sqrt_ab = float(self.schedule.sqrt_alpha_bars[i])
        sqrt_1mab = float(self.schedule.sqrt_one_minus_alpha_bars[i])
        y_t = np.asarray(y_t, dtype=np.float64)
        if self.parameterization == "x0":
            return eps_from_x0(y_t, out, sqrt_ab, sqrt_1mab)
        return eps_from_v(y_t, out, sqrt_ab, sqrt_1mab)
