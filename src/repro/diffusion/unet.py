"""Denoising UNet with factorized space-time attention (Sec. 3.2).

Adapted from the video-diffusion architecture of Ho et al. [15] as the
paper describes: per-frame 2-D convolutional residual blocks with
timestep conditioning, and factorized attention at the bottleneck —
spatial self-attention within each frame followed by temporal
self-attention across frames at every spatial location.  Input/output
channels equal the VAE latent depth (the paper's change "from 3 to 64";
configurable here).

Input layout is ``(B, N, C, H, W)`` — windows of ``N`` latent frames.
Convolutions run on the flattened ``(B*N, C, H, W)`` view; attention
restores the 5-D view.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import DiffusionConfig
from ..nn import (Conv2d, GroupNorm, LayerNorm, Linear, Module, ModuleList,
                  Parameter, SiLU, Tensor)
from ..nn import fastpath as fp
from ..nn import functional as F
from .embeddings import sinusoidal_embedding

__all__ = ["DenoisingUNet", "ResBlock", "SpaceTimeAttention"]


class ResBlock(Module):
    """GroupNorm → SiLU → conv, twice, with a timestep shift in between."""

    def __init__(self, in_ch: int, out_ch: int, time_dim: int, groups: int,
                 rng: np.random.Generator):
        super().__init__()
        g_in = min(groups, in_ch)
        g_out = min(groups, out_ch)
        while in_ch % g_in:
            g_in -= 1
        while out_ch % g_out:
            g_out -= 1
        self.norm1 = GroupNorm(g_in, in_ch)
        self.conv1 = Conv2d(in_ch, out_ch, 3, padding=1, rng=rng)
        self.time_proj = Linear(time_dim, out_ch, rng=rng)
        self.norm2 = GroupNorm(g_out, out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, padding=1, rng=rng)
        self.skip = (Conv2d(in_ch, out_ch, 1, rng=rng)
                     if in_ch != out_ch else None)

    def forward(self, x: Tensor, temb: Tensor) -> Tensor:
        """``x``: (B*N, C, H, W); ``temb``: (B*N, time_dim)."""
        if fp.active():
            return Tensor(self._fast(x.data, temb.data))
        h = self.conv1(F.silu(self.norm1(x)))
        shift = self.time_proj(F.silu(temb))
        shift = F.reshape(shift, (shift.shape[0], shift.shape[1], 1, 1))
        h = h + shift
        h = self.conv2(F.silu(self.norm2(h)))
        skip = self.skip(x) if self.skip is not None else x
        return h + skip

    def _fast(self, x: np.ndarray, temb: np.ndarray) -> np.ndarray:
        h = self.conv1._fast(fp.silu(self.norm1._fast(x)))
        shift = self.time_proj._fast(fp.silu(temb))
        h = h + shift.reshape(shift.shape[0], shift.shape[1], 1, 1)
        h = self.conv2._fast(fp.silu(self.norm2._fast(h)))
        skip = self.skip._fast(x) if self.skip is not None else x
        return h + skip


class _SelfAttention(Module):
    """Single-head self-attention over token sequences ``(B', L, C)``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.norm = LayerNorm(dim)
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        if fp.active():
            return Tensor(self._fast(tokens.data))
        h = self.norm(tokens)
        qkv = self.qkv(h)
        q, k, v = F.split(qkv, 3, axis=-1)
        out = F.scaled_dot_product_attention(q, k, v)
        return tokens + self.proj(out)

    def _fast(self, tokens: np.ndarray) -> np.ndarray:
        h = self.norm._fast(tokens)
        qkv = self.qkv._fast(h)
        # .copy() matches the contiguous splits the op chain produces
        q, k, v = (p.copy() for p in np.split(qkv, 3, axis=-1))
        out = fp.sdpa(q, k, v)
        return tokens + self.proj._fast(out)


class TemporalAttention(Module):
    """Temporal-only attention used at every UNet resolution.

    Spatial mixing at the outer levels is already provided by the
    convolutions; what those levels lack is any cross-frame pathway, so
    each gets attention along the frame axis (the cheap half of the
    factorized pattern — ``(H·W)`` sequences of length ``N``).
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.temporal = _SelfAttention(dim, rng)

    def forward(self, x: Tensor, batch: int, frames: int) -> Tensor:
        BN, C, H, W = x.shape
        if BN != batch * frames:
            raise ValueError(f"got {BN} rows, expected {batch}*{frames}")
        if fp.active():
            return Tensor(self._fast(x.data, batch, frames))
        x5 = F.reshape(x, (batch, frames, C, H, W))
        tok = F.temporal_tokens(x5)
        tok = self.temporal(tok)
        x5 = F.untokenize_temporal(tok, (batch, frames, C, H, W))
        return F.reshape(x5, (BN, C, H, W))

    def _fast(self, x: np.ndarray, batch: int, frames: int) -> np.ndarray:
        BN, C, H, W = x.shape
        shape5 = (batch, frames, C, H, W)
        tok = fp.temporal_tokens(x.reshape(shape5))
        tok = self.temporal._fast(tok)
        return fp.untokenize_temporal(tok, shape5).reshape(BN, C, H, W)


class SpaceTimeAttention(Module):
    """Factorized attention: spatial within frames, then temporal.

    Operates on the flattened conv layout and needs ``(B, N)`` to
    recover the 5-D view (the paper's reshapes to ``N x (H·W) x C`` and
    ``(H·W) x N x C`` respectively).
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.spatial = _SelfAttention(dim, rng)
        self.temporal = _SelfAttention(dim, rng)

    def forward(self, x: Tensor, batch: int, frames: int) -> Tensor:
        BN, C, H, W = x.shape
        if BN != batch * frames:
            raise ValueError(f"got {BN} rows, expected {batch}*{frames}")
        if fp.active():
            return Tensor(self._fast(x.data, batch, frames))
        x5 = F.reshape(x, (batch, frames, C, H, W))
        tok = F.spatial_tokens(x5)              # (B*N, HW, C)
        tok = self.spatial(tok)
        x5 = F.untokenize_spatial(tok, (batch, frames, C, H, W))
        tok = F.temporal_tokens(x5)             # (B*H*W, N, C)
        tok = self.temporal(tok)
        x5 = F.untokenize_temporal(tok, (batch, frames, C, H, W))
        return F.reshape(x5, (BN, C, H, W))

    def _fast(self, x: np.ndarray, batch: int, frames: int) -> np.ndarray:
        BN, C, H, W = x.shape
        shape5 = (batch, frames, C, H, W)
        tok = fp.spatial_tokens(x.reshape(shape5))
        tok = self.spatial._fast(tok)
        x5 = fp.untokenize_spatial(tok, shape5)
        tok = fp.temporal_tokens(x5)
        tok = self.temporal._fast(tok)
        return fp.untokenize_temporal(tok, shape5).reshape(BN, C, H, W)


class DenoisingUNet(Module):
    """ε_θ(y_t^N, t): predicts per-frame noise for a latent window."""

    def __init__(self, cfg: DiffusionConfig,
                 rng: Optional[np.random.Generator] = None,
                 out_channels: Optional[int] = None):
        """``out_channels`` overrides the output depth (default: equal
        to the input ``latent_channels``) — used by data-space baselines
        whose input concatenates conditioning channels that are not
        predicted."""
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cfg = cfg
        self.out_channels = out_channels or cfg.latent_channels
        tdim = cfg.time_embed_dim
        chs = [cfg.base_channels * m for m in cfg.channel_mults]
        self.channels = chs

        self.time_mlp = _TimeMLP(tdim, rng)
        # Learned frame-position embedding: temporal attention is
        # permutation-equivariant, so without this the network could not
        # distinguish keyframe positions from generated positions.
        self.frame_embed = Parameter(
            rng.normal(0.0, 0.02, size=(cfg.num_frames, tdim)))
        self.conv_in = Conv2d(cfg.latent_channels, chs[0], 3, padding=1,
                              rng=rng)

        self.down_res = ModuleList()
        self.down_tattn = ModuleList()
        self.downsamples = ModuleList()
        for i, ch in enumerate(chs):
            self.down_res.append(
                ResBlock(ch, ch, tdim, cfg.num_groups, rng))
            self.down_tattn.append(TemporalAttention(ch, rng))
            if i < len(chs) - 1:
                self.downsamples.append(
                    Conv2d(ch, chs[i + 1], 3, stride=2, padding=1, rng=rng))

        self.mid_res1 = ResBlock(chs[-1], chs[-1], tdim, cfg.num_groups, rng)
        self.mid_attn = SpaceTimeAttention(chs[-1], rng)
        self.mid_res2 = ResBlock(chs[-1], chs[-1], tdim, cfg.num_groups, rng)

        self.up_res = ModuleList()
        self.up_tattn = ModuleList()
        self.upsamples = ModuleList()
        for i in reversed(range(len(chs))):
            self.up_res.append(
                ResBlock(2 * chs[i], chs[i], tdim, cfg.num_groups, rng))
            self.up_tattn.append(TemporalAttention(chs[i], rng))
            if i > 0:
                self.upsamples.append(
                    Conv2d(chs[i], chs[i - 1], 3, padding=1, rng=rng))

        g = min(cfg.num_groups, chs[0])
        while chs[0] % g:
            g -= 1
        self.out_norm = GroupNorm(g, chs[0])
        self.out_conv = Conv2d(chs[0], self.out_channels, 3, padding=1,
                               rng=rng)

    # ------------------------------------------------------------------
    def forward(self, y_t: Tensor, t) -> Tensor:
        """Predict noise for a window.

        Parameters
        ----------
        y_t:
            ``(B, N, C, H, W)`` noisy window (keyframes spliced clean).
        t:
            scalar int or ``(B,)`` integer array of timesteps.
        """
        B, N, C, H, W = y_t.shape
        t = np.atleast_1d(np.asarray(t, dtype=np.int64))
        if t.size == 1:
            t = np.repeat(t, B)
        if t.size != B:
            raise ValueError(f"need {B} timesteps, got {t.size}")

        if N != self.cfg.num_frames:
            raise ValueError(
                f"window length {N} != configured num_frames "
                f"{self.cfg.num_frames}")
        if fp.active():
            arr = (y_t.data if isinstance(y_t, Tensor)
                   else np.asarray(y_t, dtype=np.float64))
            return Tensor(self._fast(arr, t))
        temb = self.time_mlp(Tensor(
            sinusoidal_embedding(t, self.cfg.time_embed_dim)))  # (B, tdim)
        # broadcast per frame and add the frame-position embedding
        temb = F.reshape(temb, (B, 1, self.cfg.time_embed_dim))
        temb = temb + F.reshape(self.frame_embed,
                                (1, N, self.cfg.time_embed_dim))
        temb = F.reshape(temb, (B * N, self.cfg.time_embed_dim))

        x = F.reshape(y_t, (B * N, C, H, W))
        x = self.conv_in(x)

        skips: List[Tensor] = []
        for i in range(len(self.channels)):
            x = self.down_res[i](x, temb)
            x = self.down_tattn[i](x, B, N)
            skips.append(x)
            if i < len(self.channels) - 1:
                x = self.downsamples[i](x)

        x = self.mid_res1(x, temb)
        x = self.mid_attn(x, B, N)
        x = self.mid_res2(x, temb)

        for j, i in enumerate(reversed(range(len(self.channels)))):
            x = F.concat([x, skips[i]], axis=1)
            x = self.up_res[j](x, temb)
            x = self.up_tattn[j](x, B, N)
            if i > 0:
                x = F.upsample_nearest2d(x, 2)
                x = self.upsamples[j](x)

        x = self.out_conv(F.silu(self.out_norm(x)))
        return F.reshape(x, (B, N, self.out_channels, H, W))

    def _fast(self, y_t: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Raw-array twin of :meth:`forward` (validation already done)."""
        B, N, C, H, W = y_t.shape
        tdim = self.cfg.time_embed_dim
        temb = self.time_mlp._fast(sinusoidal_embedding(t, tdim))
        temb = temb.reshape(B, 1, tdim) + self.frame_embed.data.reshape(
            1, N, tdim)
        temb = temb.reshape(B * N, tdim)

        x = self.conv_in._fast(y_t.reshape(B * N, C, H, W))

        skips: List[np.ndarray] = []
        for i in range(len(self.channels)):
            x = self.down_res[i]._fast(x, temb)
            x = self.down_tattn[i]._fast(x, B, N)
            skips.append(x)
            if i < len(self.channels) - 1:
                x = self.downsamples[i]._fast(x)

        x = self.mid_res1._fast(x, temb)
        x = self.mid_attn._fast(x, B, N)
        x = self.mid_res2._fast(x, temb)

        for j, i in enumerate(reversed(range(len(self.channels)))):
            x = np.concatenate([x, skips[i]], axis=1)
            x = self.up_res[j]._fast(x, temb)
            x = self.up_tattn[j]._fast(x, B, N)
            if i > 0:
                x = fp.upsample_nearest2d(x, 2)
                x = self.upsamples[j]._fast(x)

        x = self.out_conv._fast(fp.silu(self.out_norm._fast(x)))
        return x.reshape(B, N, self.out_channels, H, W)


class _TimeMLP(Module):
    """Two-layer MLP refining the sinusoidal embedding."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, dim * 2, rng=rng)
        self.fc2 = Linear(dim * 2, dim, rng=rng)

    def forward(self, emb: Tensor) -> Tensor:
        return self.fc2(F.silu(self.fc1(emb)))

    def _fast(self, emb: np.ndarray) -> np.ndarray:
        return self.fc2._fast(fp.silu(self.fc1._fast(emb)))
