"""Reconstruction-quality and compression-ratio metrics (Sec. 4.1-4.2).

Beyond the paper's NRMSE (Eq. 12) this module provides the standard
companions reviewers ask compression papers for: PSNR, SSIM (structural
similarity, frame-averaged for stacks) and temporal autocorrelation
diagnostics that quantify how fast a dataset decorrelates in time —
the property that decides how far apart keyframes can sit (Sec. 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

__all__ = ["nrmse", "rmse", "mse", "psnr", "ssim", "CompressionAccounting",
           "compression_ratio", "temporal_autocorrelation",
           "decorrelation_time"]


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}")
    diff = original - reconstructed
    return float(np.mean(diff * diff))


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    return float(np.sqrt(mse(original, reconstructed)))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Normalized RMSE (Eq. 12): RMSE over the data's value range."""
    rng = float(np.max(original) - np.min(original))
    if rng == 0.0:
        return 0.0 if rmse(original, reconstructed) == 0.0 else np.inf
    return rmse(original, reconstructed) / rng


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB over the data's value range."""
    e = mse(original, reconstructed)
    rng = float(np.max(original) - np.min(original))
    if e == 0.0:
        return np.inf
    if rng == 0.0:
        return -np.inf
    return 10.0 * np.log10(rng * rng / e)


def ssim(original: np.ndarray, reconstructed: np.ndarray,
         data_range: Optional[float] = None, sigma: float = 1.5) -> float:
    """Structural similarity index (Wang et al.), Gaussian-windowed.

    Accepts ``(H, W)`` frames or ``(T, H, W)`` stacks (frame-averaged).
    ``data_range`` defaults to the original's value range.  Gaussian
    windows (``sigma = 1.5``, the reference choice) replace the 8x8
    blocks of the original paper, as in every modern implementation.
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.ndim == 2:
        x, y = x[None], y[None]
    if x.ndim != 3:
        raise ValueError(f"expected (H, W) or (T, H, W), got {x.shape}")
    rng = data_range if data_range is not None else float(x.max() - x.min())
    if rng == 0.0:
        return 1.0 if np.array_equal(x, y) else 0.0
    c1 = (0.01 * rng) ** 2
    c2 = (0.03 * rng) ** 2

    def blur(a):
        return ndimage.gaussian_filter(a, sigma=(0, sigma, sigma),
                                       mode="reflect")

    mu_x, mu_y = blur(x), blur(y)
    xx, yy, xy = blur(x * x), blur(y * y), blur(x * y)
    var_x = np.maximum(xx - mu_x * mu_x, 0.0)
    var_y = np.maximum(yy - mu_y * mu_y, 0.0)
    cov = xy - mu_x * mu_y
    num = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
    den = (mu_x ** 2 + mu_y ** 2 + c1) * (var_x + var_y + c2)
    return float(np.mean(num / den))


def temporal_autocorrelation(frames: np.ndarray,
                             max_lag: Optional[int] = None) -> np.ndarray:
    """Mean per-pixel temporal autocorrelation ``rho(lag)``.

    Frames are centred per pixel over time; ``rho(0) == 1``.  High
    values at the keyframe interval mean generative interpolation has
    signal to work with — the quantity behind the paper's Fig. 4
    interval trade-off.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError(f"expected (T, H, W), got {frames.shape}")
    t = frames.shape[0]
    if t < 2:
        raise ValueError("need at least 2 frames")
    max_lag = min(max_lag if max_lag is not None else t - 1, t - 1)
    centred = frames - frames.mean(axis=0, keepdims=True)
    denom = (centred * centred).sum(axis=0)
    denom = np.where(denom < 1e-30, 1.0, denom)
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    for lag in range(1, max_lag + 1):
        num = (centred[:-lag] * centred[lag:]).sum(axis=0)
        out[lag] = float((num / denom).mean())
    return out


def decorrelation_time(frames: np.ndarray,
                       threshold: float = 1.0 / np.e) -> int:
    """Smallest lag at which ``rho(lag)`` drops below ``threshold``.

    Returns ``T - 1`` (the maximum measurable lag) when the sequence
    never decorrelates within the window — e.g. smooth climate drift.
    """
    rho = temporal_autocorrelation(frames)
    below = np.nonzero(rho < threshold)[0]
    return int(below[0]) if below.size else int(rho.size - 1)


@dataclass
class CompressionAccounting:
    """Byte-level breakdown of a compressed stream (Eq. 11).

    ``latent_bytes`` is ``Size(L)`` — coded keyframe latents, coded
    hyper-latents and all stream headers; ``guarantee_bytes`` is
    ``Size(G)`` — the coded PCA correction used to enforce the error
    bound.
    """

    original_bytes: int
    latent_bytes: int
    guarantee_bytes: int = 0

    @property
    def compressed_bytes(self) -> int:
        return self.latent_bytes + self.guarantee_bytes

    @property
    def ratio(self) -> float:
        """Effective compression ratio Size(Ω) / (Size(L) + Size(G))."""
        if self.compressed_bytes == 0:
            return np.inf
        return self.original_bytes / self.compressed_bytes

    def __add__(self, other: "CompressionAccounting"
                ) -> "CompressionAccounting":
        return CompressionAccounting(
            self.original_bytes + other.original_bytes,
            self.latent_bytes + other.latent_bytes,
            self.guarantee_bytes + other.guarantee_bytes)


def compression_ratio(original: np.ndarray, compressed_bytes: int,
                      guarantee_bytes: int = 0,
                      dtype_bytes: Optional[int] = None) -> float:
    """Convenience wrapper: Eq. 11 for an array compressed to N bytes.

    ``dtype_bytes`` overrides the per-element size of the original
    (scientific archives are typically float32 even if analysis runs in
    float64).
    """
    original = np.asarray(original)
    per_elem = dtype_bytes if dtype_bytes is not None else original.itemsize
    acc = CompressionAccounting(original.size * per_elem, compressed_bytes,
                                guarantee_bytes)
    return acc.ratio
