"""Model/pipeline size configurations.

Three presets are provided:

* :func:`tiny` — used by the unit/integration tests (seconds to train);
* :func:`small` — used by the examples and benchmark harness (minutes);
* :func:`paper` — records the full-scale hyperparameters of Sec. 4.3
  for documentation (latent 64 channels, 256x256 crops, N = 16,
  T = 1000 fine-tuned to 32).  Training it requires the GPU substrate
  the paper used; it is exposed so the configuration itself is testable
  and the scaling path is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["VAEConfig", "DiffusionConfig", "PipelineConfig", "ReproConfig",
           "tiny", "small", "paper"]


@dataclass(frozen=True)
class VAEConfig:
    """Architecture of the frame VAE and its hyperprior (Sec. 3.1)."""

    in_channels: int = 1
    latent_channels: int = 8     # paper: 64
    base_filters: int = 16
    num_down: int = 2            # stride-2 stages; paper effectively 4
    hyper_filters: int = 8
    hyper_down: int = 1          # stride-2 stages inside the hyperprior
    kernel_size: int = 5
    activation: str = "silu"     # | "gdn" (Ballé divisive normalization)

    def __post_init__(self):
        if self.num_down < 1:
            raise ValueError("num_down must be >= 1")
        if self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        if self.activation not in ("silu", "gdn"):
            raise ValueError(
                f"activation must be 'silu' or 'gdn', "
                f"got {self.activation!r}")

    @property
    def downsample_factor(self) -> int:
        return 2 ** self.num_down


@dataclass(frozen=True)
class DiffusionConfig:
    """Architecture/training of the latent diffusion module (Sec. 3.2-3.4)."""

    latent_channels: int = 8     # must match VAEConfig.latent_channels
    base_channels: int = 16
    channel_mults: Tuple[int, ...] = (1, 2)
    time_embed_dim: int = 32
    num_frames: int = 8          # paper: N = 16
    train_steps: int = 64        # paper: T = 1000
    finetune_steps: int = 8      # paper: 32
    beta_schedule: str = "linear"
    num_groups: int = 4          # GroupNorm groups

    def __post_init__(self):
        if self.train_steps < 1:
            raise ValueError("train_steps must be >= 1")
        if self.num_frames < 1:
            # num_frames == 1 degenerates to a per-image model; the CDC
            # baseline uses exactly that.
            raise ValueError("num_frames must be >= 1")


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end compressor settings (Sec. 3.3, 3.5, 4.4-4.5)."""

    window: int = 8              # frames per diffusion window; paper 16
    keyframe_interval: int = 3   # paper's best trade-off (Fig. 4)
    keyframe_strategy: str = "interpolation"  # | "prediction" | "mixed"
    sample_steps: int = 8        # denoising steps at decode time (DDIM)
    # The paper's fast decode trains at T=1000 and *fine-tunes the model
    # to a short schedule*, then runs that short chain — i.e. ancestral
    # sampling over the fine-tuned schedule.  "ddim" instead skips steps
    # of the long schedule without retraining.
    sampler: str = "ancestral"   # | "ddim" | "dpm"
    error_bound: Optional[float] = None  # L2 target tau for postprocessing
    pca_block: int = 8           # spatial block edge for residual PCA
    pca_rank: int = 32           # retained PCA basis size
    coeff_quant_bits: int = 10   # quantizer resolution for coefficients

    def __post_init__(self):
        if self.keyframe_strategy not in ("interpolation", "prediction",
                                          "mixed"):
            raise ValueError(
                f"unknown keyframe strategy {self.keyframe_strategy!r}")
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        if self.window < 2:
            raise ValueError("window must be >= 2")


@dataclass(frozen=True)
class ReproConfig:
    """Bundle of all three configs with consistency checks."""

    vae: VAEConfig = field(default_factory=VAEConfig)
    diffusion: DiffusionConfig = field(default_factory=DiffusionConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def __post_init__(self):
        if self.vae.latent_channels != self.diffusion.latent_channels:
            raise ValueError(
                "VAE and diffusion latent_channels must match "
                f"({self.vae.latent_channels} vs "
                f"{self.diffusion.latent_channels})")
        if self.pipeline.window != self.diffusion.num_frames:
            raise ValueError(
                "pipeline window must equal diffusion num_frames "
                f"({self.pipeline.window} vs {self.diffusion.num_frames})")


def tiny() -> ReproConfig:
    """Second-scale configuration for tests."""
    return ReproConfig(
        vae=VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                      hyper_filters=4, kernel_size=3),
        diffusion=DiffusionConfig(latent_channels=4, base_channels=8,
                                  channel_mults=(1, 2), time_embed_dim=16,
                                  num_frames=6, train_steps=16,
                                  finetune_steps=4, num_groups=2),
        pipeline=PipelineConfig(window=6, keyframe_interval=3,
                                sample_steps=4, pca_block=4, pca_rank=8),
    )


def small() -> ReproConfig:
    """Minute-scale configuration for examples and benchmarks."""
    return ReproConfig(
        vae=VAEConfig(latent_channels=8, base_filters=16, num_down=2,
                      hyper_filters=8, kernel_size=5),
        diffusion=DiffusionConfig(latent_channels=8, base_channels=16,
                                  channel_mults=(1, 2), time_embed_dim=32,
                                  num_frames=8, train_steps=64,
                                  finetune_steps=8, num_groups=4),
        pipeline=PipelineConfig(window=8, keyframe_interval=3,
                                sample_steps=8, pca_block=8, pca_rank=16),
    )


def paper() -> ReproConfig:
    """Full-scale hyperparameters from Sec. 4.3 (documentation/record)."""
    return ReproConfig(
        vae=VAEConfig(latent_channels=64, base_filters=128, num_down=4,
                      hyper_filters=64, hyper_down=2, kernel_size=5),
        diffusion=DiffusionConfig(latent_channels=64, base_channels=128,
                                  channel_mults=(1, 2, 4), time_embed_dim=512,
                                  num_frames=16, train_steps=1000,
                                  finetune_steps=32, num_groups=32),
        pipeline=PipelineConfig(window=16, keyframe_interval=3,
                                sample_steps=32, pca_block=16, pca_rank=64),
    )
