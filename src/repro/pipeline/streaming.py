"""Constant-memory streaming compression for long simulations.

The paper's datasets are tens of GB (Table 1) — far beyond what a
compressor should hold in memory at once.  This module feeds a frame
*iterator* through any registered codec in bounded chunks and packs the
resulting streams into a self-describing :class:`StreamArchive`:

* memory stays ``O(chunk_frames)`` regardless of simulation length;
* a chunk is only emitted while at least one more full window of
  frames remains buffered, so the final chunk always has ``>= window``
  frames and no frame is ever dropped or padded;
* error bounds are enforced **per chunk**; since the chunks partition
  the frames, the global guarantee follows as
  ``||x - x̂||_2 <= sqrt(sum_i tau_i^2)`` (for an NRMSE target each
  chunk uses its own range, which is the conservative direction
  whenever chunk ranges are below the global range).

The compressor may be a trained
:class:`~repro.pipeline.compressor.LatentDiffusionCompressor` (legacy
form — chunks are archived as native blobs), any
:class:`~repro.codecs.base.Codec`, or a registry name; non-blob codecs
archive their chunks as tagged codec envelopes.

Decompression is symmetric: :meth:`StreamingCompressor.decompress_stream`
yields one chunk of frames at a time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

import numpy as np

from ..bound import Bound
from ..metrics import CompressionAccounting
from .blob import CompressedBlob
from .engine import SEED_STRIDE

__all__ = ["StreamArchive", "StreamingCompressor", "ChunkResult"]

_MAGIC = b"LDSA"
_VERSION = 1
_VERSION_CODEC = 2     # adds envelope (non-blob codec) entries

_ENTRY_BLOB = 0
_ENTRY_ENVELOPE = 1


@dataclass
class ChunkResult:
    """Per-chunk bookkeeping yielded during streaming compression."""

    index: int
    start_frame: int
    num_frames: int
    blob: Optional[CompressedBlob]
    achieved_nrmse: float
    #: uniform codec result (payload, accounting, timing)
    result: "object" = None

    @property
    def payload(self) -> bytes:
        return self.result.payload if self.result is not None else b""


@dataclass
class StreamArchive:
    """Ordered collection of chunk streams with aggregate accounting.

    Chunks are either native blobs (latent-diffusion codec) or
    ``(shape, envelope)`` pairs for any other codec.
    """

    blobs: List[CompressedBlob] = field(default_factory=list)
    #: non-blob chunks: ((T, H, W), envelope bytes), in stream order
    envelopes: List[tuple] = field(default_factory=list)
    original_dtype_bytes: int = 4

    @property
    def num_chunks(self) -> int:
        return len(self.blobs) + len(self.envelopes)

    @property
    def num_frames(self) -> int:
        return (sum(b.shape[0] for b in self.blobs)
                + sum(shape[0] for shape, _ in self.envelopes))

    def accounting(self) -> CompressionAccounting:
        """Eq. 11 over the whole stream (all headers included)."""
        original = (sum(int(np.prod(b.shape)) for b in self.blobs)
                    + sum(int(np.prod(shape))
                          for shape, _ in self.envelopes)
                    ) * self.original_dtype_bytes
        latent = (sum(b.latent_bytes() for b in self.blobs)
                  + sum(len(env) for _, env in self.envelopes))
        guarantee = sum(b.guarantee_bytes() for b in self.blobs)
        return CompressionAccounting(original_bytes=original,
                                     latent_bytes=latent,
                                     guarantee_bytes=guarantee)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        version = _VERSION if not self.envelopes else _VERSION_CODEC
        parts = [_MAGIC, struct.pack("<BII", version, self.num_chunks,
                                     self.original_dtype_bytes)]
        entries = [(_ENTRY_BLOB, None, blob.to_bytes())
                   for blob in self.blobs]
        entries += [(_ENTRY_ENVELOPE, shape, env)
                    for shape, env in self.envelopes]
        for kind, shape, payload in entries:
            if version == _VERSION_CODEC:
                parts.append(struct.pack("<B", kind))
                if kind == _ENTRY_ENVELOPE:
                    parts.append(struct.pack("<III", *shape))
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StreamArchive":
        if data[:4] != _MAGIC:
            raise ValueError("not a stream archive (bad magic)")
        version, count, dtype_bytes = struct.unpack_from("<BII", data, 4)
        if version not in (_VERSION, _VERSION_CODEC):
            raise ValueError(f"unsupported archive version {version}")
        pos = 4 + struct.calcsize("<BII")
        blobs = []
        envelopes = []
        for _ in range(count):
            kind = _ENTRY_BLOB
            shape = None
            if version == _VERSION_CODEC:
                kind, = struct.unpack_from("<B", data, pos)
                pos += 1
                if kind == _ENTRY_ENVELOPE:
                    shape = struct.unpack_from("<III", data, pos)
                    pos += struct.calcsize("<III")
            n, = struct.unpack_from("<I", data, pos)
            pos += 4
            payload = data[pos:pos + n]
            if len(payload) != n:
                raise ValueError("truncated archive: chunk incomplete")
            if kind == _ENTRY_BLOB:
                blobs.append(CompressedBlob.from_bytes(payload))
            elif kind == _ENTRY_ENVELOPE:
                envelopes.append((tuple(shape), payload))
            else:
                raise ValueError(f"unknown archive entry kind {kind}")
            pos += n
        return cls(blobs=blobs, envelopes=envelopes,
                   original_dtype_bytes=dtype_bytes)


class StreamingCompressor:
    """Chunked wrapper around any codec.

    Parameters
    ----------
    compressor:
        A trained ``LatentDiffusionCompressor``, a codec instance, or a
        registry name (with a fitted corrector attached if bounded
        compression is requested).
    chunk_windows:
        Nominal codec windows per chunk; memory usage scales with
        ``chunk_windows * window`` frames.
    """

    def __init__(self, compressor, chunk_windows: int = 4):
        from ..codecs import as_codec
        if chunk_windows < 1:
            raise ValueError("chunk_windows must be >= 1")
        self.codec = as_codec(compressor)
        # legacy attribute: the native compressor object when one exists
        self.compressor = (self.codec.impl if self.codec.impl is not None
                           else self.codec)
        self.chunk_windows = chunk_windows

    @property
    def window(self) -> int:
        return max(self.codec.window, self.codec.min_frames, 1)

    @property
    def chunk_frames(self) -> int:
        return self.chunk_windows * self.window

    @property
    def original_dtype_bytes(self) -> int:
        return getattr(self.codec.impl, "original_dtype_bytes", 4)

    # ------------------------------------------------------------------
    def compress_iter(self, frames: Iterable[np.ndarray],
                      error_bound: Optional[float] = None,
                      nrmse_bound: Optional[float] = None,
                      noise_seed: int = 0,
                      bound: Optional[Bound] = None
                      ) -> Iterator[ChunkResult]:
        """Lazily compress an iterable of ``(H, W)`` frames.

        Yields one :class:`ChunkResult` per chunk.  ``bound`` is a
        first-class :class:`~repro.bound.Bound`; the legacy
        ``error_bound`` (per-chunk L2) / ``nrmse_bound`` (per-chunk
        NRMSE) kwargs remain.  Bounds are enforced per chunk (see the
        module docstring for how the global guarantee follows).
        """
        bound = Bound.coalesce(bound=bound, error_bound=error_bound,
                               nrmse_bound=nrmse_bound)
        window = self.window
        buffer: List[np.ndarray] = []
        index = 0
        start = 0
        for frame in frames:
            frame = np.asarray(frame, dtype=np.float64)
            if frame.ndim != 2:
                raise ValueError(
                    f"stream frames must be (H, W), got {frame.shape}")
            buffer.append(frame)
            # emit only while >= one window remains buffered afterwards,
            # so the tail chunk can never be shorter than a window
            if len(buffer) >= self.chunk_frames + window:
                chunk = np.stack(buffer[:self.chunk_frames])
                buffer = buffer[self.chunk_frames:]
                yield self._compress_chunk(chunk, index, start, bound,
                                           noise_seed)
                start += chunk.shape[0]
                index += 1
        if len(buffer) < window:
            raise ValueError(
                f"stream tail has {len(buffer)} frames; need >= {window} "
                "(total stream shorter than one window?)")
        chunk = np.stack(buffer)
        yield self._compress_chunk(chunk, index, start, bound, noise_seed)

    def compress(self, frames: Iterable[np.ndarray],
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 noise_seed: int = 0,
                 bound: Optional[Bound] = None) -> StreamArchive:
        """Drain :meth:`compress_iter` into a :class:`StreamArchive`."""
        from ..codecs import pack_envelope
        archive = StreamArchive(
            original_dtype_bytes=self.original_dtype_bytes)
        for res in self.compress_iter(frames, error_bound=error_bound,
                                      nrmse_bound=nrmse_bound,
                                      noise_seed=noise_seed,
                                      bound=bound):
            if res.blob is not None:
                archive.blobs.append(res.blob)
            else:
                shape = (res.num_frames,
                         *res.result.reconstruction.shape[1:])
                archive.envelopes.append(
                    (shape, pack_envelope(res.result.codec,
                                          res.result.payload)))
        return archive

    def _compress_chunk(self, chunk: np.ndarray, index: int, start: int,
                        bound: Optional[Bound],
                        noise_seed: int) -> ChunkResult:
        res = self.codec.compress_bounded(
            chunk, bound=bound, seed=noise_seed + SEED_STRIDE * index)
        return ChunkResult(index=index, start_frame=start,
                           num_frames=chunk.shape[0], blob=res.blob,
                           achieved_nrmse=res.achieved_nrmse, result=res)

    # ------------------------------------------------------------------
    def decompress_stream(self, archive: StreamArchive
                          ) -> Iterator[np.ndarray]:
        """Yield reconstructed chunks in order (constant memory)."""
        from ..codecs import unpack_envelope
        for blob in archive.blobs:
            if hasattr(self.codec, "decompress_blob"):
                yield self.codec.decompress_blob(blob)
            else:
                yield self.codec.decompress(blob.to_bytes())
        for _, env in archive.envelopes:
            codec_name, payload = unpack_envelope(env)
            if codec_name != self.codec.name:
                raise ValueError(
                    f"archive chunk was written by codec {codec_name!r} "
                    f"but {self.codec.name!r} is configured")
            yield self.codec.decompress(payload)

    def decompress_all(self, archive: StreamArchive) -> np.ndarray:
        """Concatenate every chunk (convenience; loads everything)."""
        return np.concatenate(list(self.decompress_stream(archive)),
                              axis=0)
