"""Constant-memory streaming compression for long simulations.

The paper's datasets are tens of GB (Table 1) — far beyond what a
compressor should hold in memory at once.  This module feeds a frame
*iterator* through the trained
:class:`~repro.pipeline.compressor.LatentDiffusionCompressor` in
bounded chunks and packs the resulting blobs into a self-describing
:class:`StreamArchive`:

* memory stays ``O(chunk_frames)`` regardless of simulation length;
* a chunk is only emitted while at least one more full window of
  frames remains buffered, so the final chunk always has ``>= window``
  frames and no frame is ever dropped or padded;
* error bounds are enforced **per chunk**; since the chunks partition
  the frames, the global guarantee follows as
  ``||x - x̂||_2 <= sqrt(sum_i tau_i^2)`` (for an NRMSE target each
  chunk uses its own range, which is the conservative direction
  whenever chunk ranges are below the global range).

Decompression is symmetric: :meth:`StreamingCompressor.decompress_stream`
yields one chunk of frames at a time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

import numpy as np

from ..metrics import CompressionAccounting
from .blob import CompressedBlob
from .compressor import LatentDiffusionCompressor

__all__ = ["StreamArchive", "StreamingCompressor", "ChunkResult"]

_MAGIC = b"LDSA"
_VERSION = 1


@dataclass
class ChunkResult:
    """Per-chunk bookkeeping yielded during streaming compression."""

    index: int
    start_frame: int
    num_frames: int
    blob: CompressedBlob
    achieved_nrmse: float


@dataclass
class StreamArchive:
    """Ordered collection of chunk blobs with aggregate accounting."""

    blobs: List[CompressedBlob] = field(default_factory=list)
    original_dtype_bytes: int = 4

    @property
    def num_chunks(self) -> int:
        return len(self.blobs)

    @property
    def num_frames(self) -> int:
        return sum(b.shape[0] for b in self.blobs)

    def accounting(self) -> CompressionAccounting:
        """Eq. 11 over the whole stream (all headers included)."""
        original = sum(int(np.prod(b.shape)) for b in self.blobs
                       ) * self.original_dtype_bytes
        latent = sum(b.latent_bytes() for b in self.blobs)
        guarantee = sum(b.guarantee_bytes() for b in self.blobs)
        return CompressionAccounting(original_bytes=original,
                                     latent_bytes=latent,
                                     guarantee_bytes=guarantee)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        parts = [_MAGIC, struct.pack("<BII", _VERSION, len(self.blobs),
                                     self.original_dtype_bytes)]
        for blob in self.blobs:
            payload = blob.to_bytes()
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "StreamArchive":
        if data[:4] != _MAGIC:
            raise ValueError("not a stream archive (bad magic)")
        version, count, dtype_bytes = struct.unpack_from("<BII", data, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported archive version {version}")
        pos = 4 + struct.calcsize("<BII")
        blobs = []
        for _ in range(count):
            n, = struct.unpack_from("<I", data, pos)
            pos += 4
            payload = data[pos:pos + n]
            if len(payload) != n:
                raise ValueError("truncated archive: blob incomplete")
            blobs.append(CompressedBlob.from_bytes(payload))
            pos += n
        return cls(blobs=blobs, original_dtype_bytes=dtype_bytes)


class StreamingCompressor:
    """Chunked wrapper around a trained compressor.

    Parameters
    ----------
    compressor:
        The trained end-to-end compressor (with a fitted corrector if
        bounded compression is requested).
    chunk_windows:
        Nominal diffusion windows per chunk; memory usage scales with
        ``chunk_windows * window`` frames.
    """

    def __init__(self, compressor: LatentDiffusionCompressor,
                 chunk_windows: int = 4):
        if chunk_windows < 1:
            raise ValueError("chunk_windows must be >= 1")
        self.compressor = compressor
        self.chunk_windows = chunk_windows

    @property
    def chunk_frames(self) -> int:
        return self.chunk_windows * self.compressor.config.window

    # ------------------------------------------------------------------
    def compress_iter(self, frames: Iterable[np.ndarray],
                      error_bound: Optional[float] = None,
                      nrmse_bound: Optional[float] = None,
                      noise_seed: int = 0) -> Iterator[ChunkResult]:
        """Lazily compress an iterable of ``(H, W)`` frames.

        Yields one :class:`ChunkResult` per chunk.  ``error_bound`` is
        the per-chunk L2 bound; ``nrmse_bound`` a per-chunk NRMSE
        target.
        """
        window = self.compressor.config.window
        buffer: List[np.ndarray] = []
        index = 0
        start = 0
        for frame in frames:
            frame = np.asarray(frame, dtype=np.float64)
            if frame.ndim != 2:
                raise ValueError(
                    f"stream frames must be (H, W), got {frame.shape}")
            buffer.append(frame)
            # emit only while >= one window remains buffered afterwards,
            # so the tail chunk can never be shorter than a window
            if len(buffer) >= self.chunk_frames + window:
                chunk = np.stack(buffer[:self.chunk_frames])
                buffer = buffer[self.chunk_frames:]
                yield self._compress_chunk(chunk, index, start,
                                           error_bound, nrmse_bound,
                                           noise_seed)
                start += chunk.shape[0]
                index += 1
        if len(buffer) < window:
            raise ValueError(
                f"stream tail has {len(buffer)} frames; need >= {window} "
                "(total stream shorter than one window?)")
        chunk = np.stack(buffer)
        yield self._compress_chunk(chunk, index, start, error_bound,
                                   nrmse_bound, noise_seed)

    def compress(self, frames: Iterable[np.ndarray],
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 noise_seed: int = 0) -> StreamArchive:
        """Drain :meth:`compress_iter` into a :class:`StreamArchive`."""
        archive = StreamArchive(
            original_dtype_bytes=self.compressor.original_dtype_bytes)
        for res in self.compress_iter(frames, error_bound=error_bound,
                                      nrmse_bound=nrmse_bound,
                                      noise_seed=noise_seed):
            archive.blobs.append(res.blob)
        return archive

    def _compress_chunk(self, chunk: np.ndarray, index: int, start: int,
                        error_bound: Optional[float],
                        nrmse_bound: Optional[float],
                        noise_seed: int) -> ChunkResult:
        res = self.compressor.compress(chunk, error_bound=error_bound,
                                       nrmse_bound=nrmse_bound,
                                       noise_seed=noise_seed + 7919 * index)
        return ChunkResult(index=index, start_frame=start,
                           num_frames=chunk.shape[0], blob=res.blob,
                           achieved_nrmse=res.achieved_nrmse)

    # ------------------------------------------------------------------
    def decompress_stream(self, archive: StreamArchive
                          ) -> Iterator[np.ndarray]:
        """Yield reconstructed chunks in order (constant memory)."""
        for blob in archive.blobs:
            yield self.compressor.decompress(blob)

    def decompress_all(self, archive: StreamArchive) -> np.ndarray:
        """Concatenate every chunk (convenience; loads everything)."""
        return np.concatenate(list(self.decompress_stream(archive)),
                              axis=0)
