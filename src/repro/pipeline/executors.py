"""Pluggable execution backends for the :class:`CodecEngine`.

Executors are thin adapters over :class:`repro.runtime.TaskRuntime` —
one dispatcher supplies the serial/thread/process backends, per-task
retry, and completion events, while this module keeps the public
surface the pipeline has always had: the ordered :meth:`Executor.map`
contract, the ``EXECUTORS`` registry, and :func:`get_executor`.
Journal-aware callers (the engine's resumable sweeps) use
:meth:`Executor.run_tasks` to dispatch explicit
:class:`~repro.runtime.Task` records with completion callbacks.

``serial``
    Inline execution in the calling thread.  The reference semantics
    every other backend must reproduce byte-for-byte.
``thread``
    :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy kernels
    release the GIL, so threads scale the matrix-heavy codecs without
    any serialization cost.
``process``
    :class:`~concurrent.futures.ProcessPoolExecutor` (``fork`` context
    where available).  Sidesteps the GIL for the pure-Python codec hot
    loops; work items must be picklable, which is why the engine ships
    codec/dataset *specs* (see :attr:`Executor.wants_specs`) and lets
    workers rebuild them.  The pool is created lazily and kept warm
    across batches, amortizing the fork cost over a whole sweep.

All three produce **ordered** results and propagate worker exceptions
to the caller, so swapping backends never changes observable behavior
— only wall-clock.

``close()`` is idempotent and exception-safe on every backend, and is
*not* terminal — a later ``map`` lazily rebuilds the pool.  There is
deliberately no ``__del__`` anywhere: GC-timing-dependent finalizers
race interpreter shutdown, so lifecycle is explicit (``with`` or
``close()``).
"""

from __future__ import annotations

from typing import (Callable, Dict, List, Optional, Sequence, Type, TypeVar,
                    Union)

from ..runtime import Task, TaskOutcome, TaskRuntime, default_workers
from ..runtime.runtime import EventFn, ResultFn

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "get_executor", "list_executors",
           "default_workers", "EXECUTORS"]


class Executor:
    """Ordered-map strategy over a batch of independent work items.

    ``max_workers`` is an upper bound; the runtime clamps the actual
    pool width to the number of items (no idle workers for small
    batches).
    """

    #: registry name (set on subclasses)
    name: str = "abstract"
    #: True if work must be shipped as picklable *specs* that workers
    #: rebuild (process pools), rather than live object references.
    wants_specs: bool = False

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = default_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._runtime = self._build_runtime()

    def _build_runtime(self) -> TaskRuntime:
        return TaskRuntime(mode=self.name, max_workers=self.max_workers,
                           name=f"repro-{self.name}")

    @property
    def runtime(self) -> TaskRuntime:
        """The underlying shared task runtime."""
        return self._runtime

    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        """Apply ``fn`` to every item, preserving order.

        Exceptions raised by ``fn`` propagate to the caller exactly as
        in the serial path.
        """
        return self._runtime.map(fn, items)

    def run_tasks(self, tasks: Sequence[Task],
                  on_result: Optional[ResultFn] = None,
                  on_event: Optional[EventFn] = None) -> List[TaskOutcome]:
        """Dispatch explicit task records with completion callbacks.

        ``on_result`` fires per task in completion order (before that
        task's ``completed`` event) — the seam the sweep journal hooks.
        """
        return self._runtime.run(tasks, on_result=on_result,
                                 on_event=on_event)

    def close(self) -> None:
        """Release pooled resources; idempotent and exception-safe."""
        runtime = getattr(self, "_runtime", None)
        if runtime is not None:
            runtime.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r} "
                f"max_workers={self.max_workers}>")


class SerialExecutor(Executor):
    """In-process, in-order execution (the reference backend)."""

    name = "serial"


class ThreadExecutor(Executor):
    """Thread-pool execution; zero serialization, GIL-sharing."""

    name = "thread"


class ProcessExecutor(Executor):
    """Process-pool execution; work ships as picklable specs.

    The underlying pool is created on first use and reused across
    :meth:`map` calls (fork cost is paid once per sweep, not per
    batch).  Unlike threads — which may oversubscribe usefully while
    peers block in GIL-releasing kernels — process workers are fully
    CPU-bound, so the runtime additionally clamps the pool width to
    the core count.
    """

    name = "process"
    wants_specs = True

    def __init__(self, max_workers: Optional[int] = None,
                 mp_context: Optional[str] = None):
        self._mp_context = mp_context
        super().__init__(max_workers)
        self.mp_context = self._runtime.mp_context

    def _build_runtime(self) -> TaskRuntime:
        return TaskRuntime(mode="process", max_workers=self.max_workers,
                           mp_context=self._mp_context,
                           name="repro-process")


EXECUTORS: Dict[str, Type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def list_executors() -> List[str]:
    """Sorted names of every execution backend."""
    return sorted(EXECUTORS)


def get_executor(executor: Union[str, Executor],
                 max_workers: Optional[int] = None) -> Executor:
    """Resolve a backend name (or pass through an instance).

    An already-built :class:`Executor` is returned as-is — it carries
    its own ``max_workers``.
    """
    if isinstance(executor, Executor):
        return executor
    key = str(executor).strip().lower()
    cls = EXECUTORS.get(key)
    if cls is None:
        known = ", ".join(sorted(EXECUTORS))
        raise KeyError(f"unknown executor {executor!r}; "
                       f"registered: {known}")
    return cls(max_workers=max_workers)
