"""Pluggable execution backends for the :class:`CodecEngine`.

The engine used to hardwire one ``ThreadPoolExecutor``.  Execution is
now a strategy — an :class:`Executor` maps a function over work items
in order — with three interchangeable backends:

``serial``
    Plain list comprehension.  The reference semantics every other
    backend must reproduce byte-for-byte.
``thread``
    :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy kernels
    release the GIL, so threads scale the matrix-heavy codecs without
    any serialization cost.
``process``
    :class:`~concurrent.futures.ProcessPoolExecutor` (``fork`` context
    where available).  Sidesteps the GIL for the pure-Python codec hot
    loops; work items must be picklable, which is why the engine ships
    codec/dataset *specs* (see :attr:`Executor.wants_specs`) and lets
    workers rebuild them.  The pool is created lazily and kept warm
    across batches, amortizing the fork cost over a whole sweep.

All three produce **ordered** results and propagate worker exceptions
to the caller, so swapping backends never changes observable behavior
— only wall-clock.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Type, TypeVar, Union

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "get_executor", "list_executors",
           "default_workers", "EXECUTORS"]


def default_workers() -> int:
    """Default pool width: one worker per available CPU."""
    return os.cpu_count() or 4


class Executor(abc.ABC):
    """Ordered-map strategy over a batch of independent work items.

    ``max_workers`` is an upper bound; every backend clamps the actual
    pool width to the number of items (no idle workers for small
    batches).
    """

    #: registry name (set on subclasses)
    name: str = "abstract"
    #: True if work must be shipped as picklable *specs* that workers
    #: rebuild (process pools), rather than live object references.
    wants_specs: bool = False

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = default_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    @abc.abstractmethod
    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> List[U]:
        """Apply ``fn`` to every item, preserving order.

        Exceptions raised by ``fn`` propagate to the caller exactly as
        in the serial path.
        """

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r} "
                f"max_workers={self.max_workers}>")


class SerialExecutor(Executor):
    """In-process, in-order execution (the reference backend)."""

    name = "serial"

    def map(self, fn, items):
        return [fn(it) for it in items]


class ThreadExecutor(Executor):
    """Thread-pool execution; zero serialization, GIL-sharing."""

    name = "thread"

    def map(self, fn, items):
        items = list(items)
        workers = min(self.max_workers, len(items))
        if workers <= 1:
            return [fn(it) for it in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class ProcessExecutor(Executor):
    """Process-pool execution; work ships as picklable specs.

    The underlying pool is created on first use and reused across
    :meth:`map` calls (fork cost is paid once per sweep, not per
    batch); :meth:`close` shuts it down.  Unlike threads — which may
    oversubscribe usefully while peers block in GIL-releasing kernels
    — process workers are fully CPU-bound, so the pool width is
    additionally clamped to the core count.
    """

    name = "process"
    wants_specs = True

    def __init__(self, max_workers: Optional[int] = None,
                 mp_context: Optional[str] = None):
        super().__init__(max_workers)
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self.mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    def _get_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_workers < workers:
            self.close()  # grow the pool to the new width
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp.get_context(self.mp_context))
            self._pool_workers = workers
        return self._pool

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        workers = min(self.max_workers, len(items), default_workers())
        pool = self._get_pool(workers)
        chunksize = max(1, len(items) // (workers * 4))
        return list(pool.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass


EXECUTORS: Dict[str, Type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def list_executors() -> List[str]:
    """Sorted names of every execution backend."""
    return sorted(EXECUTORS)


def get_executor(executor: Union[str, Executor],
                 max_workers: Optional[int] = None) -> Executor:
    """Resolve a backend name (or pass through an instance).

    An already-built :class:`Executor` is returned as-is — it carries
    its own ``max_workers``.
    """
    if isinstance(executor, Executor):
        return executor
    key = str(executor).strip().lower()
    cls = EXECUTORS.get(key)
    if cls is None:
        known = ", ".join(sorted(EXECUTORS))
        raise KeyError(f"unknown executor {executor!r}; "
                       f"registered: {known}")
    return cls(max_workers=max_workers)
