"""Compressed-stream container and binary serialization.

A :class:`CompressedBlob` holds everything the decompressor needs:

* global geometry and pipeline settings (window length, keyframe
  strategy/interval, sampler settings, noise seed),
* per-frame normalization constants (float32 mean/range pairs),
* **one** entropy-coded latent stream and **one** hyper-latent stream
  covering the keyframes of *all* temporal windows — batching the
  windows into a single arithmetic-coded stream amortizes coder
  termination and header costs that per-window streams would pay
  ``n_windows`` times over,
* the optional error-bound payload ``G``.

Window origins are not stored: they are a pure function of ``(T,
window)`` (see :func:`repro.pipeline.compressor.window_starts`), so the
decoder re-derives them.

Streams written with a non-default entropy backend (see
:mod:`repro.entropy.backend`) bump the container to version 3, which
inserts the backend's one-byte wire tag after the fixed header; the
decoder self-selects the right coder from it.  Arithmetic-coded blobs
keep the version-2 layout byte-for-byte, and version-2 readers of this
class never see a tag — untagged means arithmetic.

``to_bytes``/``from_bytes`` implement a compact binary format — the
length of :meth:`CompressedBlob.to_bytes` is exactly the
``Size(L) + Size(G)`` denominator of Eq. 11, headers included, so all
compression ratios in this repo are honest end-to-end numbers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["WindowStreams", "CompressedBlob"]

_MAGIC = b"LDCB"
_VERSION = 2
#: version 3 == version 2 plus a one-byte entropy-backend tag; only
#: written when the backend is not the arithmetic default
_VERSION_TAGGED = 3
_DEFAULT_ENTROPY = "arithmetic"


@dataclass
class WindowStreams:
    """Back-compat view of one window's share of the batched stream.

    Retained for introspection/tests; the serialized format stores the
    batched stream once, not per window.
    """

    start: int
    keyframes: int  # number of keyframes this window contributes


@dataclass
class CompressedBlob:
    """Full compressed representation of a ``(T, H, W)`` frame stack."""

    shape: Tuple[int, int, int]
    window: int
    keyframe_strategy: str
    keyframe_interval: int
    sampler: str
    sample_steps: int
    noise_seed: int
    frame_norms: np.ndarray           # (T, 2) float32: mean, range
    y_stream: bytes = b""
    z_stream: bytes = b""
    y_header: Dict[str, int] = field(default_factory=lambda: {"L": 1})
    z_header: Dict[str, int] = field(
        default_factory=lambda: {"zmin": 0, "zmax": 0})
    y_shape: Tuple[int, int, int, int] = (0, 0, 0, 0)  # (K_total, C, h, w)
    z_shape: Tuple[int, int, int, int] = (0, 0, 0, 0)
    bound_payload: bytes = b""
    #: entropy backend both latent streams were coded with
    entropy_backend: str = _DEFAULT_ENTROPY

    # ------------------------------------------------------------------
    def latent_bytes(self) -> int:
        """Size(L): every byte except the error-bound payload."""
        return len(self.to_bytes()) - len(self.bound_payload)

    def guarantee_bytes(self) -> int:
        """Size(G): the coded PCA correction."""
        return len(self.bound_payload)

    def total_bytes(self) -> int:
        return len(self.to_bytes())

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        T, H, W = self.shape
        strategy = self.keyframe_strategy.encode()
        sampler = self.sampler.encode()
        norms = np.asarray(self.frame_norms, dtype="<f4")
        if norms.shape != (T, 2):
            raise ValueError(f"frame_norms must be ({T}, 2), "
                             f"got {norms.shape}")
        version = (_VERSION if self.entropy_backend == _DEFAULT_ENTROPY
                   else _VERSION_TAGGED)
        parts = [_MAGIC, struct.pack(
            "<BIIIIBIIq", version, T, H, W, self.window,
            len(strategy), self.keyframe_interval, self.sample_steps,
            self.noise_seed)]
        if version == _VERSION_TAGGED:
            from ..entropy.backend import get_backend
            parts.append(struct.pack("<B",
                                     get_backend(self.entropy_backend).tag))
        parts.append(strategy)
        parts.append(struct.pack("<B", len(sampler)))
        parts.append(sampler)
        parts.append(norms.tobytes())
        parts.append(struct.pack(
            "<IIII IIII i i i",
            *self.y_shape, *self.z_shape,
            int(self.y_header["L"]),
            int(self.z_header["zmin"]), int(self.z_header["zmax"])))
        parts.append(struct.pack("<I", len(self.y_stream)))
        parts.append(self.y_stream)
        parts.append(struct.pack("<I", len(self.z_stream)))
        parts.append(self.z_stream)
        parts.append(struct.pack("<I", len(self.bound_payload)))
        parts.append(self.bound_payload)
        return b"".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes) -> "CompressedBlob":
        if data[:4] != _MAGIC:
            raise ValueError("not a compressed blob (bad magic)")
        fmt = "<BIIIIBIIq"
        version, T, H, W, window, slen, interval, steps, seed = (
            struct.unpack_from(fmt, data, 4))
        if version not in (_VERSION, _VERSION_TAGGED):
            raise ValueError(f"unsupported blob version {version}")
        pos = 4 + struct.calcsize(fmt)
        entropy_backend = _DEFAULT_ENTROPY
        if version == _VERSION_TAGGED:
            from ..entropy.backend import backend_from_tag
            entropy_backend = backend_from_tag(data[pos]).name
            pos += 1
        strategy = data[pos:pos + slen].decode()
        pos += slen
        splen, = struct.unpack_from("<B", data, pos)
        pos += 1
        sampler = data[pos:pos + splen].decode()
        pos += splen
        norms = np.frombuffer(data, dtype="<f4", count=2 * T,
                              offset=pos).reshape(T, 2).astype(np.float64)
        pos += 8 * T
        fmt2 = "<IIII IIII i i i"
        vals = struct.unpack_from(fmt2, data, pos)
        pos += struct.calcsize(fmt2)
        y_shape, z_shape = tuple(vals[:4]), tuple(vals[4:8])
        L, zmin, zmax = vals[8], vals[9], vals[10]

        def take_stream(pos: int) -> Tuple[bytes, int]:
            n, = struct.unpack_from("<I", data, pos)
            pos += 4
            payload = data[pos:pos + n]
            if len(payload) != n:
                raise ValueError("truncated blob: stream incomplete")
            return payload, pos + n

        y_stream, pos = take_stream(pos)
        z_stream, pos = take_stream(pos)
        bound_payload, pos = take_stream(pos)
        y_header: Dict[str, object] = {"L": L}
        z_header: Dict[str, object] = {"zmin": zmin, "zmax": zmax}
        if entropy_backend != _DEFAULT_ENTROPY:
            y_header["backend"] = entropy_backend
            z_header["backend"] = entropy_backend
        return cls(shape=(T, H, W), window=window,
                   keyframe_strategy=strategy, keyframe_interval=interval,
                   sampler=sampler, sample_steps=steps, noise_seed=seed,
                   frame_norms=norms, y_stream=y_stream, z_stream=z_stream,
                   y_header=y_header, z_header=z_header,
                   y_shape=y_shape, z_shape=z_shape,
                   bound_payload=bound_payload,
                   entropy_backend=entropy_backend)

    # ------------------------------------------------------------------
    def streams_dict(self) -> Dict:
        """Bundle in the format ``VAEHyperprior.decompress_latents`` takes."""
        return {"y_stream": self.y_stream, "y_header": self.y_header,
                "z_stream": self.z_stream, "z_header": self.z_header,
                "y_shape": self.y_shape, "z_shape": self.z_shape,
                "entropy_backend": self.entropy_backend}
