"""Seekable-container machinery: footer indexes and byte sources.

The multi-part containers (``SHRD`` shard archives, ``LDMV``
multi-variable archives) historically required a full-archive read and
parse before a single member could be touched.  This module defines
the *footer index* that makes them seekable:

* every member gets a :class:`MemberIndex` row — key (shard id or
  variable name), entry kind, codec name, time geometry, absolute byte
  ``offset``/``length`` inside the container, and a CRC-32 checksum of
  the stored payload;
* the rows serialize into a footer block written *after* the members,
  followed by a fixed-size trailer (footer offset + footer CRC +
  magic) as the last 16 bytes of the container.

Opening an indexed container therefore costs three tiny reads — head
(sniff), trailer, footer — independent of archive size, and decoding
one member costs one ``read_at(offset, length)`` plus its checksum
verification.  Writers bump their container version when they append
a footer; old versions remain readable byte-for-byte (readers that
pre-date the footer simply never seek past the member region).

Byte access is abstracted behind tiny *sources* (:class:`BufferSource`
for in-memory archives, :class:`FileSource` for paths,
:class:`FileObjSource` for seekable handles), so the same index code
serves ``Archive.open(path)``, raw bytes, and instrumented streams —
:class:`CountingReader` wraps any handle and counts bytes actually
read, which is how the benches and tests assert that partial decode
touches O(footer + selected members) bytes.

Malformed index structures raise :class:`ArchiveIndexError` (a
:class:`ValueError`, joining the container error family) rather than
decoding garbage.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Union

__all__ = ["ArchiveIndexError", "MemberIndex", "build_index",
           "parse_index", "read_index", "verify_member",
           "BufferSource", "FileSource", "FileObjSource", "as_source",
           "CountingReader", "INDEX_MAGIC", "TRAILER_MAGIC",
           "TRAILER_SIZE", "INDEX_VERSION"]

#: magic opening the footer index block
INDEX_MAGIC = b"RIX1"
#: magic closing the container (last 4 bytes of an indexed archive)
TRAILER_MAGIC = b"XIR1"
#: trailer layout: footer offset (u64), footer CRC-32 (u32), magic
_TRAILER_FMT = "<QI4s"
TRAILER_SIZE = struct.calcsize(_TRAILER_FMT)
#: version of the footer block layout itself
INDEX_VERSION = 1

#: member entry kinds (mirrors the container writers' vocabulary)
MEMBER_BLOB = 0
MEMBER_ENVELOPE = 1

_ENTRY_FIXED = "<BiIIQQI"  # kind, variable, t0, t1, offset, length, crc


class ArchiveIndexError(ValueError):
    """A container's footer index (or an indexed member) is missing,
    truncated, or fails its checksum."""


@dataclass(frozen=True)
class MemberIndex:
    """One member's row in a container footer index.

    ``offset``/``length`` locate the member's stored payload inside
    the container (absolute byte offset); ``crc32`` is the CRC-32 of
    exactly those bytes.  ``variable`` is ``-1`` and ``t0 == t1 == 0``
    when the container kind has no time geometry (multi-variable
    archives).
    """

    key: str
    kind: int
    codec: str
    variable: int
    t0: int
    t1: int
    offset: int
    length: int
    crc32: int

    @property
    def frames(self) -> int:
        return self.t1 - self.t0


# ----------------------------------------------------------------------
# Footer serialization.
# ----------------------------------------------------------------------
def build_index(members: List[MemberIndex]) -> bytes:
    """Serialize the footer block plus trailer for ``members``.

    The returned bytes are appended verbatim after a container's
    member region; ``footer_offset`` in the trailer is relative to the
    container start, so the caller passes the current write position
    via the members' absolute offsets and appends this blob at the end
    of the file.
    """
    parts = [INDEX_MAGIC, struct.pack("<BI", INDEX_VERSION,
                                      len(members))]
    for m in members:
        key = m.key.encode()
        codec = m.codec.encode()
        if not 0 < len(key) <= 0xFFFF:
            raise ValueError(f"bad member key {m.key!r}")
        if len(codec) > 0xFF:
            raise ValueError(f"bad codec name {m.codec!r}")
        parts.append(struct.pack("<H", len(key)))
        parts.append(key)
        parts.append(struct.pack("<B", len(codec)))
        parts.append(codec)
        parts.append(struct.pack(_ENTRY_FIXED, m.kind, m.variable,
                                 m.t0, m.t1, m.offset, m.length,
                                 m.crc32))
    footer = b"".join(parts)
    return footer + struct.pack(_TRAILER_FMT, 0, zlib.crc32(footer),
                                TRAILER_MAGIC)


def _finish_trailer(blob: bytes, footer_offset: int) -> bytes:
    """Patch the placeholder footer offset once the caller knows where
    the footer lands in the container."""
    footer, trailer = blob[:-TRAILER_SIZE], blob[-TRAILER_SIZE:]
    _, crc, magic = struct.unpack(_TRAILER_FMT, trailer)
    return footer + struct.pack(_TRAILER_FMT, footer_offset, crc, magic)


def index_blob(members: List[MemberIndex], footer_offset: int) -> bytes:
    """Footer block + trailer, with the trailer pointing at
    ``footer_offset`` (the container position the blob is written at).
    """
    return _finish_trailer(build_index(members), footer_offset)


def parse_index(footer: bytes) -> List[MemberIndex]:
    """Parse a footer block (without the trailer)."""
    if footer[:4] != INDEX_MAGIC:
        raise ArchiveIndexError("container index has a bad footer "
                                "magic")
    try:
        version, count = struct.unpack_from("<BI", footer, 4)
        if version != INDEX_VERSION:
            raise ArchiveIndexError(
                f"unsupported container index version {version}")
        pos = 4 + struct.calcsize("<BI")
        members = []
        for _ in range(count):
            klen, = struct.unpack_from("<H", footer, pos)
            pos += 2
            key = footer[pos:pos + klen].decode()
            pos += klen
            clen, = struct.unpack_from("<B", footer, pos)
            pos += 1
            codec = footer[pos:pos + clen].decode()
            pos += clen
            (kind, variable, t0, t1, offset, length,
             crc) = struct.unpack_from(_ENTRY_FIXED, footer, pos)
            pos += struct.calcsize(_ENTRY_FIXED)
            members.append(MemberIndex(
                key=key, kind=kind, codec=codec, variable=variable,
                t0=t0, t1=t1, offset=offset, length=length, crc32=crc))
    except (struct.error, UnicodeDecodeError) as exc:
        raise ArchiveIndexError(
            f"truncated or corrupt container index ({exc})") from None
    return members


def read_index(source) -> Optional[List[MemberIndex]]:
    """Read a container's footer index via its trailer.

    Costs two small reads (trailer + footer) regardless of container
    size.  Returns ``None`` when the container carries no trailer (a
    pre-index version); raises :class:`ArchiveIndexError` when a
    trailer is present but the footer it points at is truncated or
    fails its CRC.
    """
    size = source.size()
    if size < TRAILER_SIZE:
        return None
    trailer = source.read_at(size - TRAILER_SIZE, TRAILER_SIZE)
    if len(trailer) != TRAILER_SIZE:
        # the file shrank between size() and the read (truncation
        # racing the reader): typed error, never a bare struct.error
        raise ArchiveIndexError(
            f"container trailer read returned {len(trailer)} of "
            f"{TRAILER_SIZE} bytes (file truncated mid-read)")
    footer_offset, footer_crc, magic = struct.unpack(_TRAILER_FMT,
                                                     trailer)
    if magic != TRAILER_MAGIC:
        return None
    if not 0 < footer_offset <= size - TRAILER_SIZE:
        raise ArchiveIndexError(
            f"container trailer points outside the file "
            f"(footer at {footer_offset}, file is {size} bytes)")
    footer = source.read_at(footer_offset,
                            size - TRAILER_SIZE - footer_offset)
    if zlib.crc32(footer) != footer_crc:
        raise ArchiveIndexError("container index failed its checksum "
                                "(truncated or corrupt footer)")
    return parse_index(footer)


def verify_member(payload: bytes, member: MemberIndex) -> bytes:
    """Check a member's stored bytes against its index row.

    Returns ``payload`` unchanged on success so reads can be piped
    through the check; raises :class:`ArchiveIndexError` on length or
    CRC mismatch (a truncated or corrupted member region).
    """
    if len(payload) != member.length:
        raise ArchiveIndexError(
            f"member {member.key!r} is truncated: expected "
            f"{member.length} bytes, read {len(payload)}")
    if zlib.crc32(payload) != member.crc32:
        raise ArchiveIndexError(
            f"member {member.key!r} failed its checksum (corrupt "
            f"archive region)")
    return payload


# ----------------------------------------------------------------------
# Byte sources: uniform random access over buffers, paths and handles.
# ----------------------------------------------------------------------
class BufferSource:
    """Random access over an in-memory container."""

    def __init__(self, data: bytes):
        self._data = data

    def size(self) -> int:
        return len(self._data)

    def read_at(self, offset: int, n: int) -> bytes:
        return self._data[offset:offset + n]

    def read_all(self) -> bytes:
        return self._data

    def copy_to(self, fh: BinaryIO) -> None:
        fh.write(self._data)


class FileSource:
    """Random access over a container file path.

    Stateless — every read opens, seeks and closes — so sources are
    trivially safe to share across executor workers and never leak
    descriptors on long-lived archives.
    """

    CHUNK = 1 << 20

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)

    def size(self) -> int:
        return os.stat(self.path).st_size

    def read_at(self, offset: int, n: int) -> bytes:
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            return fh.read(n)

    def read_all(self) -> bytes:
        with open(self.path, "rb") as fh:
            return fh.read()

    def copy_to(self, fh: BinaryIO) -> None:
        with open(self.path, "rb") as src:
            while True:
                chunk = src.read(self.CHUNK)
                if not chunk:
                    break
                fh.write(chunk)


class FileObjSource:
    """Random access over an open seekable binary handle.

    The handle is borrowed, not owned; reads seek it.  This is the
    instrumentation seam: wrap the handle in :class:`CountingReader`
    to measure exactly how many bytes an operation touches.
    """

    def __init__(self, fh):
        self._fh = fh

    def size(self) -> int:
        pos = self._fh.tell()
        self._fh.seek(0, os.SEEK_END)
        end = self._fh.tell()
        self._fh.seek(pos)
        return end

    def read_at(self, offset: int, n: int) -> bytes:
        self._fh.seek(offset)
        return self._fh.read(n)

    def read_all(self) -> bytes:
        return self.read_at(0, self.size())

    def copy_to(self, fh: BinaryIO) -> None:
        fh.write(self.read_all())


def as_source(obj) -> Union[BufferSource, FileSource, FileObjSource]:
    """Normalize bytes / path / seekable handle into a byte source."""
    if isinstance(obj, (BufferSource, FileSource, FileObjSource)):
        return obj
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return BufferSource(bytes(obj))
    if hasattr(obj, "read") and hasattr(obj, "seek"):
        return FileObjSource(obj)
    return FileSource(obj)


class CountingReader:
    """Seekable binary-handle wrapper that counts bytes actually read.

    Used by the benches and tests to assert the partial-decode byte
    contract: reading one member of an indexed archive must touch
    O(footer + selected member) bytes, not the whole file.
    """

    def __init__(self, fh):
        self._fh = fh
        self.bytes_read = 0
        self.reads = 0

    def read(self, n: int = -1) -> bytes:
        data = self._fh.read(n)
        self.bytes_read += len(data)
        self.reads += 1
        return data

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._fh.seek(offset, whence)

    def tell(self) -> int:
        return self._fh.tell()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "CountingReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
