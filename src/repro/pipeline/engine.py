"""Batched parallel execution engine for registered codecs.

Scientific archives hold many independent windows/variables; their
compression is embarrassingly parallel.  :class:`CodecEngine` runs any
:class:`~repro.codecs.base.Codec` over a batch of frame stacks — or a
:class:`~repro.pipeline.plan.ShardPlan` of dataset-backed shard tasks —
through a pluggable :class:`~repro.pipeline.executors.Executor`
backend (``serial`` / ``thread`` / ``process``), while guaranteeing:

* **deterministic per-window seeding** — stack ``i`` always gets seed
  ``base_seed + seed_stride * i`` (plan-backed shards carry their own
  planner-assigned seeds), independent of scheduling order or backend;
* **bit-identical results across backends** — outputs are keyed by
  index and every codec's compress path is free of shared mutable
  state; process workers rebuild codec and dataset from picklable
  specs whose construction is deterministic (trained codecs restore
  their state from the artifact referenced by the spec — see
  :mod:`repro.pipeline.artifacts`), so all three backends produce
  byte-for-byte the same streams;
* **per-window timing and accounting aggregation** — each
  :class:`WindowReport` carries its wall time and the
  :class:`BatchResult` sums Eq. 11 accounting across the batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..bound import Bound
from ..entropy.backend import get_backend, using_backend
from ..metrics import CompressionAccounting
from ..runtime import Task
from .executors import Executor, get_executor

__all__ = ["CodecEngine", "BatchResult", "WindowReport"]

#: Default per-window seed stride (prime, matches the historical
#: window-parallel seeding so archives stay reproducible).
SEED_STRIDE = 7919


@dataclass
class WindowReport:
    """Per-window outcome: result plus scheduling/timing metadata."""

    index: int
    seed: int
    seconds: float
    result: "object"  # CodecResult (duck-typed to avoid an import cycle)
    #: planner-assigned stable ID when the window came from a ShardPlan
    shard_id: Optional[str] = None


@dataclass
class BatchResult:
    """Ordered window reports plus batch-level aggregation."""

    reports: List[WindowReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: windows restored from a sweep journal instead of recomputed
    replayed: int = 0

    @property
    def results(self) -> List["object"]:
        return [r.result for r in self.reports]

    def accounting(self) -> CompressionAccounting:
        """Eq. 11 summed over every window of the batch."""
        total = CompressionAccounting(0, 0, 0)
        for r in self.reports:
            total = total + r.result.accounting
        return total

    @property
    def ratio(self) -> float:
        return self.accounting().ratio

    def worst_nrmse(self) -> float:
        return max(r.result.achieved_nrmse for r in self.reports)

    @property
    def cpu_seconds(self) -> float:
        """Summed per-window time (== wall time for serial runs)."""
        return sum(r.seconds for r in self.reports)

    @property
    def speedup(self) -> float:
        """Aggregate per-window time over wall-clock.

        Upper-bound proxy for parallel efficiency: per-window clocks
        include time spent waiting on the GIL under contention, so for
        GIL-heavy codecs this overestimates the true wall-clock gain —
        compare wall_seconds against a serial run for an honest number.
        """
        return self.cpu_seconds / max(self.wall_seconds, 1e-12)


# ----------------------------------------------------------------------
# Worker-side machinery.  Module-level (not closures) so process-pool
# backends can pickle the function and its arguments.
# ----------------------------------------------------------------------
@dataclass
class _WindowJob:
    """Everything one worker needs to compress one window."""

    index: int
    seed: int
    #: a live Codec (serial/thread) or its spec dict (process)
    codec_ref: Any
    #: materialized frames, or None when ``source`` generates them
    stack: Optional[np.ndarray] = None
    #: object with ``materialize() -> ndarray`` (a ShardTask)
    source: Any = None
    shard_id: Optional[str] = None
    #: codec-native float, or a picklable :class:`Bound` the worker
    #: normalizes against its own stack (matching serial semantics)
    bound: Union[None, float, Bound] = None
    error_bound: Optional[float] = None
    nrmse_bound: Optional[float] = None
    keep_reconstruction: bool = True
    #: entropy-backend name the worker scopes around the compress call
    #: (rides in the job so process pools see the parent's selection)
    entropy_backend: Optional[str] = None


@dataclass
class _DecodeJob:
    codec_ref: Any
    payload: bytes


#: per-process cache of codecs rebuilt from specs (keyed by spec repr),
#: so a worker builds each codec once per sweep, not once per window.
_SPEC_CACHE: Dict[str, Any] = {}


def _resolve_codec(ref):
    """Turn a job's codec reference back into a live codec."""
    from ..codecs import Codec, codec_from_spec
    if isinstance(ref, Codec):
        return ref
    key = repr(sorted(ref.items()))
    codec = _SPEC_CACHE.get(key)
    if codec is None:
        codec = codec_from_spec(ref)
        _SPEC_CACHE[key] = codec
    return codec


def _run_window_job(job: _WindowJob) -> WindowReport:
    codec = _resolve_codec(job.codec_ref)
    stack = job.stack if job.stack is not None else job.source.materialize()
    stack = np.asarray(stack)
    t0 = time.perf_counter()
    with using_backend(job.entropy_backend):
        if isinstance(job.bound, Bound):
            res = codec.compress_bounded(stack, bound=job.bound,
                                         seed=job.seed)
        elif job.bound is not None or (job.error_bound is None
                                       and job.nrmse_bound is None):
            res = codec.compress(stack, job.bound, seed=job.seed)
        else:
            res = codec.compress_bounded(stack,
                                         error_bound=job.error_bound,
                                         nrmse_bound=job.nrmse_bound,
                                         seed=job.seed)
    if not job.keep_reconstruction:
        res.payload  # force lazy serialization before detail is dropped
        res.reconstruction = None
        res.detail = None
    return WindowReport(index=job.index, seed=job.seed,
                        seconds=time.perf_counter() - t0,
                        result=res, shard_id=job.shard_id)


def _run_decode_job(job: _DecodeJob) -> np.ndarray:
    return _resolve_codec(job.codec_ref).decompress(job.payload)


# ----------------------------------------------------------------------
# Sweep-journal support: recording completed windows and rebuilding
# reports from journaled payloads on resume.
# ----------------------------------------------------------------------
@dataclass
class _ReplayedResult:
    """CodecResult stand-in rebuilt from a journal entry.

    Carries exactly what downstream consumers (archive packing, batch
    accounting) read from a fresh result: the payload bytes, Eq. 11
    accounting, and the achieved NRMSE.  Reconstructions are never
    journaled, so replay implies ``keep_reconstruction=False``.
    """

    payload: bytes
    accounting: CompressionAccounting
    achieved_nrmse: float
    reconstruction: Any = None
    detail: Any = None


def _journal_task_id(job: _WindowJob) -> str:
    return job.shard_id or f"window/{job.index}"


def _journal_meta(report: WindowReport) -> Dict[str, Any]:
    acc = report.result.accounting
    return {"index": report.index,
            "seed": report.seed,
            "seconds": report.seconds,
            "original_bytes": int(acc.original_bytes),
            "latent_bytes": int(acc.latent_bytes),
            "guarantee_bytes": int(acc.guarantee_bytes),
            "nrmse": float(report.result.achieved_nrmse)}


def _replayed_report(job: _WindowJob, meta: Dict[str, Any],
                     payload: bytes) -> WindowReport:
    acc = CompressionAccounting(
        original_bytes=int(meta.get("original_bytes", 0)),
        latent_bytes=int(meta.get("latent_bytes", len(payload))),
        guarantee_bytes=int(meta.get("guarantee_bytes", 0)))
    result = _ReplayedResult(payload=payload, accounting=acc,
                             achieved_nrmse=float(meta.get("nrmse", 0.0)))
    return WindowReport(index=job.index, seed=job.seed,
                        seconds=float(meta.get("seconds", 0.0)),
                        result=result, shard_id=job.shard_id)


class CodecEngine:
    """Run one codec over batches of independent frame stacks.

    Parameters
    ----------
    codec:
        Any :class:`~repro.codecs.base.Codec` — or anything
        :func:`repro.codecs.as_codec` accepts (a registry name, a
        trained ``LatentDiffusionCompressor``, a native baseline).
    max_workers:
        Pool-width upper bound; defaults to ``os.cpu_count()`` and is
        clamped to the number of windows/shards at execution time.
    base_seed, seed_stride:
        Stack ``i`` compresses with ``base_seed + seed_stride * i``
        (:meth:`compress_plan` uses the planner's per-shard seeds
        instead).
    executor:
        Backend name (``"serial"`` / ``"thread"`` / ``"process"``) or a
        ready :class:`~repro.pipeline.executors.Executor` instance
        (which then carries its own ``max_workers``).
    entropy_backend:
        Entropy-coder selection scoped around every compress call
        (``None`` keeps the process default).  Rides inside each job,
        so process-pool workers apply it too and archives stay
        byte-identical across executor backends.
    """

    def __init__(self, codec, max_workers: Optional[int] = None,
                 base_seed: int = 0, seed_stride: int = SEED_STRIDE,
                 executor: Union[str, Executor] = "thread",
                 entropy_backend: Optional[str] = None):
        from ..codecs import as_codec  # local: codecs imports pipeline
        self.codec = as_codec(codec)
        self.executor = get_executor(executor, max_workers=max_workers)
        self.max_workers = self.executor.max_workers
        self.base_seed = base_seed
        self.seed_stride = seed_stride
        self.entropy_backend = (None if entropy_backend is None
                                else get_backend(entropy_backend).name)

    # ------------------------------------------------------------------
    def seed_for(self, index: int) -> int:
        return self.base_seed + self.seed_stride * index

    def _codec_ref(self):
        """The codec as this backend wants it shipped."""
        if not self.executor.wants_specs:
            return self.codec
        try:
            return self.codec.to_spec()
        except TypeError as exc:
            raise TypeError(
                f"codec {self.codec.name!r} cannot be shipped to a "
                f"{self.executor.name!r} executor ({exc}); save "
                f"trained state to an artifact (Codec.save_artifact) "
                f"first, or use the serial or thread backend for "
                f"stateful codecs"
            ) from None

    @staticmethod
    def _check_bounds(bound, error_bound, nrmse_bound):
        if bound is not None and (error_bound is not None
                                  or nrmse_bound is not None):
            raise ValueError("give bound or error_bound/nrmse_bound, "
                             "not both")

    def _execute(self, jobs: List[_WindowJob], journal=None,
                 on_event=None) -> BatchResult:
        t0 = time.perf_counter()
        if journal is None and on_event is None:
            # fast path: plain ordered map, zero bookkeeping overhead
            reports = self.executor.map(_run_window_job, jobs)
            return BatchResult(reports=reports,
                               wall_seconds=time.perf_counter() - t0)

        by_index: Dict[int, WindowReport] = {}
        replayed = 0
        remaining: List[Task] = []
        completed = journal.completed() if journal is not None else {}
        for job in jobs:
            task_id = _journal_task_id(job)
            entry = completed.get(task_id)
            if entry is not None and int(entry.meta.get("seed", -1)) == job.seed:
                payload = journal.payload(entry)
                if payload is not None:
                    by_index[job.index] = _replayed_report(
                        job, entry.meta, payload)
                    replayed += 1
                    continue
            # damaged object / seed drift / never completed: recompute
            remaining.append(Task(task_id=task_id, fn=_run_window_job,
                                  payload=job, index=job.index,
                                  seed=job.seed))

        def _record(outcome) -> None:
            report: WindowReport = outcome.value
            if journal is not None:
                journal.record(outcome.task_id, report.result.payload,
                               _journal_meta(report))
            by_index[report.index] = report

        self.executor.run_tasks(remaining, on_result=_record,
                                on_event=on_event)
        reports = [by_index[job.index] for job in jobs]
        return BatchResult(reports=reports,
                           wall_seconds=time.perf_counter() - t0,
                           replayed=replayed)

    # ------------------------------------------------------------------
    def compress(self, stacks: Sequence[np.ndarray],
                 bound: Union[None, float, Bound] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 keep_reconstruction: bool = True,
                 first_index: int = 0,
                 journal=None, on_event=None) -> BatchResult:
        """Compress every stack; bounds apply per stack.

        ``bound`` is a :class:`~repro.bound.Bound` — or a raw float in
        the codec's native metric; ``error_bound`` / ``nrmse_bound``
        use the legacy vocabulary.  Non-native bounds are normalized
        per stack via :meth:`Codec.native_bound` (an NRMSE target uses
        each stack's own range, matching the serial pipeline).
        ``keep_reconstruction=False`` drops reconstructions (and
        codec-native detail objects) from the reports once payloads and
        metrics are computed — essential for large sweeps and for
        process backends, where reconstructions would otherwise be
        pickled back to the parent for nothing.
        ``first_index`` offsets window numbering (stack ``j`` of this
        call is window ``first_index + j`` for seeding and report
        indexes), which is how chunked ingestion feeds a long stack
        sequence through several bounded calls while producing streams
        byte-identical to one big call.
        ``journal`` (a :class:`~repro.runtime.SweepJournal`) makes the
        batch resumable: windows whose journal entry verifies are
        replayed instead of recomputed, fresh completions are recorded
        durably before their ``completed`` event fires.  ``on_event``
        observes runtime :class:`~repro.runtime.TaskEvent`s.
        """
        self._check_bounds(bound, error_bound, nrmse_bound)
        ref = self._codec_ref()
        jobs = [_WindowJob(index=first_index + j,
                           seed=self.seed_for(first_index + j),
                           codec_ref=ref,
                           stack=np.asarray(stack), bound=bound,
                           error_bound=error_bound,
                           nrmse_bound=nrmse_bound,
                           keep_reconstruction=keep_reconstruction,
                           entropy_backend=self.entropy_backend)
                for j, stack in enumerate(stacks)]
        return self._execute(jobs, journal=journal, on_event=on_event)

    # ------------------------------------------------------------------
    def compress_plan(self, plan: Iterable,
                      bound: Union[None, float, Bound] = None,
                      error_bound: Optional[float] = None,
                      nrmse_bound: Optional[float] = None,
                      keep_reconstruction: bool = True,
                      journal=None, on_event=None) -> BatchResult:
        """Compress every shard of a :class:`ShardPlan`.

        Shards are *recipes*: workers materialize the frames from the
        task's dataset spec, so a process backend ships a few hundred
        bytes per shard instead of the frames themselves.  Seeds come
        from the planner (``base_seed + 7919 * i`` in plan order), not
        from this engine's ``base_seed``.

        With a ``journal``, shard ids become durable task ids: shards
        already journaled (same id *and* seed, payload hash verified)
        are replayed, the rest recomputed and recorded — the substrate
        under ``Session.sweep(..., journal=...)`` / ``repro sweep
        --resume``.
        """
        self._check_bounds(bound, error_bound, nrmse_bound)
        ref = self._codec_ref()
        jobs = [_WindowJob(index=i, seed=task.seed, codec_ref=ref,
                           source=task, shard_id=task.shard_id,
                           bound=bound, error_bound=error_bound,
                           nrmse_bound=nrmse_bound,
                           keep_reconstruction=keep_reconstruction,
                           entropy_backend=self.entropy_backend)
                for i, task in enumerate(plan)]
        return self._execute(jobs, journal=journal, on_event=on_event)

    # ------------------------------------------------------------------
    def decompress(self, payloads: Sequence[bytes]) -> List[np.ndarray]:
        """Decode every payload (ordered, parallel)."""
        ref = self._codec_ref()
        jobs = [_DecodeJob(codec_ref=ref, payload=p) for p in payloads]
        return self.executor.map(_run_decode_job, jobs)
