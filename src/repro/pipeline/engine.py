"""Batched parallel execution engine for registered codecs.

Scientific archives hold many independent windows/variables; their
compression is embarrassingly parallel.  :class:`CodecEngine` runs any
:class:`~repro.codecs.base.Codec` over a batch of frame stacks with a
thread pool (NumPy's kernels release the GIL, so threads scale for the
matrix-heavy work without the pickling cost a process pool would add
for model weights), while guaranteeing:

* **deterministic per-window seeding** — stack ``i`` always gets seed
  ``base_seed + seed_stride * i``, independent of scheduling order;
* **bit-identical-to-serial results** — outputs are keyed by index and
  every codec's compress path is free of shared mutable state, so
  ``max_workers=8`` produces byte-for-byte the streams of
  ``max_workers=1``;
* **per-window timing and accounting aggregation** — each
  :class:`WindowReport` carries its wall time and the
  :class:`BatchResult` sums Eq. 11 accounting across the batch.

The legacy :func:`repro.pipeline.parallel.compress_windows_parallel`
helper is now a thin shim over this engine.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from ..metrics import CompressionAccounting

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["CodecEngine", "BatchResult", "WindowReport", "parallel_map"]

#: Default per-window seed stride (prime, matches the historical
#: window-parallel seeding so archives stay reproducible).
SEED_STRIDE = 7919


def parallel_map(fn: Callable[[T], U], items: Sequence[T],
                 max_workers: int) -> List[U]:
    """Ordered map over a thread pool (serial when it cannot help).

    Exceptions propagate to the caller exactly as in the serial path.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    items = list(items)
    if max_workers == 1 or len(items) <= 1:
        return [fn(it) for it in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))


@dataclass
class WindowReport:
    """Per-window outcome: result plus scheduling/timing metadata."""

    index: int
    seed: int
    seconds: float
    result: "object"  # CodecResult (duck-typed to avoid an import cycle)


@dataclass
class BatchResult:
    """Ordered window reports plus batch-level aggregation."""

    reports: List[WindowReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def results(self) -> List["object"]:
        return [r.result for r in self.reports]

    def accounting(self) -> CompressionAccounting:
        """Eq. 11 summed over every window of the batch."""
        total = CompressionAccounting(0, 0, 0)
        for r in self.reports:
            total = total + r.result.accounting
        return total

    @property
    def ratio(self) -> float:
        return self.accounting().ratio

    def worst_nrmse(self) -> float:
        return max(r.result.achieved_nrmse for r in self.reports)

    @property
    def cpu_seconds(self) -> float:
        """Summed per-window time (== wall time for serial runs)."""
        return sum(r.seconds for r in self.reports)

    @property
    def speedup(self) -> float:
        """Aggregate per-window time over wall-clock.

        Upper-bound proxy for parallel efficiency: per-window clocks
        include time spent waiting on the GIL under contention, so for
        GIL-heavy codecs this overestimates the true wall-clock gain —
        compare wall_seconds against a ``max_workers=1`` run for an
        honest number.
        """
        return self.cpu_seconds / max(self.wall_seconds, 1e-12)


class CodecEngine:
    """Run one codec over batches of independent frame stacks.

    Parameters
    ----------
    codec:
        Any :class:`~repro.codecs.base.Codec` — or anything
        :func:`repro.codecs.as_codec` accepts (a registry name, a
        trained ``LatentDiffusionCompressor``, a native baseline).
    max_workers:
        Thread-pool width; ``1`` executes serially.
    base_seed, seed_stride:
        Stack ``i`` compresses with ``base_seed + seed_stride * i``.
    """

    def __init__(self, codec, max_workers: int = 4, base_seed: int = 0,
                 seed_stride: int = SEED_STRIDE):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        from ..codecs import as_codec  # local: codecs imports pipeline
        self.codec = as_codec(codec)
        self.max_workers = max_workers
        self.base_seed = base_seed
        self.seed_stride = seed_stride

    # ------------------------------------------------------------------
    def seed_for(self, index: int) -> int:
        return self.base_seed + self.seed_stride * index

    # ------------------------------------------------------------------
    def compress(self, stacks: Sequence[np.ndarray],
                 bound: Optional[float] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None) -> BatchResult:
        """Compress every stack; bounds apply per stack.

        ``bound`` is in the codec's native metric; ``error_bound`` /
        ``nrmse_bound`` use the legacy vocabulary and are normalized
        per stack via :meth:`Codec.native_bound` (an NRMSE target uses
        each stack's own range, matching the serial pipeline).
        """
        if bound is not None and (error_bound is not None
                                  or nrmse_bound is not None):
            raise ValueError("give bound or error_bound/nrmse_bound, "
                             "not both")
        stacks = list(stacks)

        def task(item):
            i, stack = item
            stack = np.asarray(stack)
            t0 = time.perf_counter()
            if bound is not None or (error_bound is None
                                     and nrmse_bound is None):
                res = self.codec.compress(stack, bound,
                                          seed=self.seed_for(i))
            else:
                res = self.codec.compress_bounded(
                    stack, error_bound=error_bound,
                    nrmse_bound=nrmse_bound, seed=self.seed_for(i))
            return WindowReport(index=i, seed=self.seed_for(i),
                                seconds=time.perf_counter() - t0,
                                result=res)

        t0 = time.perf_counter()
        reports = parallel_map(task, list(enumerate(stacks)),
                               self.max_workers)
        return BatchResult(reports=reports,
                           wall_seconds=time.perf_counter() - t0)

    # ------------------------------------------------------------------
    def decompress(self, payloads: Sequence[bytes]) -> List[np.ndarray]:
        """Decode every payload (ordered, parallel)."""
        return parallel_map(self.codec.decompress, list(payloads),
                            self.max_workers)
