"""Multi-variable dataset compression.

The paper's datasets bundle several physical variables (E3SM: 5 climate
variables; S3D: 58 species; Table 1), each compressed as its own
``(T, H, W)`` stack.  This module drives a trained compressor across a
``(V, T, H, W)`` array (or a mapping of named variables), aggregates
the Eq. 11 accounting over all variables, and serializes everything
into one archive.

A single trained model is shared across variables by default — the
per-frame normalization (Sec. 4.3) maps every variable into the same
zero-mean/unit-range domain the model was trained on.  A per-variable
compressor mapping can be supplied when variables differ enough to
merit dedicated models.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..metrics import CompressionAccounting, nrmse
from .blob import CompressedBlob
from .compressor import CompressionResult, LatentDiffusionCompressor

__all__ = ["MultiVarResult", "MultiVarArchive", "MultiVariableCompressor"]

_MAGIC = b"LDMV"
_VERSION = 1


@dataclass
class MultiVarResult:
    """Per-variable results plus dataset-level accounting."""

    results: Dict[str, CompressionResult]

    @property
    def variables(self) -> List[str]:
        return list(self.results)

    def accounting(self) -> CompressionAccounting:
        return CompressionAccounting(
            original_bytes=sum(r.accounting.original_bytes
                               for r in self.results.values()),
            latent_bytes=sum(r.accounting.latent_bytes
                             for r in self.results.values()),
            guarantee_bytes=sum(r.accounting.guarantee_bytes
                                for r in self.results.values()))

    @property
    def ratio(self) -> float:
        return self.accounting().ratio

    def worst_nrmse(self) -> float:
        return max(r.achieved_nrmse for r in self.results.values())

    def archive(self) -> "MultiVarArchive":
        return MultiVarArchive(
            blobs={name: r.blob for name, r in self.results.items()})


@dataclass
class MultiVarArchive:
    """Named blob collection with binary (de)serialization."""

    blobs: Dict[str, CompressedBlob] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        parts = [_MAGIC, struct.pack("<BI", _VERSION, len(self.blobs))]
        for name, blob in self.blobs.items():
            tag = name.encode()
            if len(tag) > 255:
                raise ValueError(f"variable name too long: {name!r}")
            payload = blob.to_bytes()
            parts.append(struct.pack("<B", len(tag)))
            parts.append(tag)
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MultiVarArchive":
        if data[:4] != _MAGIC:
            raise ValueError("not a multi-variable archive (bad magic)")
        version, count = struct.unpack_from("<BI", data, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported archive version {version}")
        pos = 4 + struct.calcsize("<BI")
        blobs: Dict[str, CompressedBlob] = {}
        for _ in range(count):
            tlen, = struct.unpack_from("<B", data, pos)
            pos += 1
            name = data[pos:pos + tlen].decode()
            pos += tlen
            n, = struct.unpack_from("<I", data, pos)
            pos += 4
            payload = data[pos:pos + n]
            if len(payload) != n:
                raise ValueError("truncated archive: blob incomplete")
            blobs[name] = CompressedBlob.from_bytes(payload)
            pos += n
        return cls(blobs=blobs)


class MultiVariableCompressor:
    """Compress/decompress a set of variables with shared or dedicated
    models.

    Parameters
    ----------
    compressor:
        Either one shared :class:`LatentDiffusionCompressor` or a
        mapping ``variable name -> compressor`` (every variable to be
        compressed must then have an entry).
    """

    def __init__(self, compressor: Union[
            LatentDiffusionCompressor,
            Mapping[str, LatentDiffusionCompressor]]):
        self._shared: Optional[LatentDiffusionCompressor]
        self._per_var: Mapping[str, LatentDiffusionCompressor]
        if isinstance(compressor, LatentDiffusionCompressor):
            self._shared = compressor
            self._per_var = {}
        else:
            if not compressor:
                raise ValueError("empty compressor mapping")
            self._shared = None
            self._per_var = dict(compressor)

    def _for(self, name: str) -> LatentDiffusionCompressor:
        if self._shared is not None:
            return self._shared
        try:
            return self._per_var[name]
        except KeyError:
            raise KeyError(f"no compressor for variable {name!r}") from None

    # ------------------------------------------------------------------
    def compress(self, data: Union[np.ndarray, Mapping[str, np.ndarray]],
                 names: Optional[Sequence[str]] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 noise_seed: int = 0) -> MultiVarResult:
        """Compress every variable.

        ``data`` is either a ``(V, T, H, W)`` array (variables named
        ``names`` or ``var0..var{V-1}``) or an explicit name→stack
        mapping.  Bounds apply per variable.
        """
        stacks = self._as_mapping(data, names)
        results: Dict[str, CompressionResult] = {}
        for vi, (name, stack) in enumerate(stacks.items()):
            comp = self._for(name)
            results[name] = comp.compress(
                stack, error_bound=error_bound, nrmse_bound=nrmse_bound,
                noise_seed=noise_seed + 104729 * vi)
        return MultiVarResult(results=results)

    def decompress(self, archive: MultiVarArchive
                   ) -> Dict[str, np.ndarray]:
        """Reconstruct every variable from an archive."""
        return {name: self._for(name).decompress(blob)
                for name, blob in archive.blobs.items()}

    # ------------------------------------------------------------------
    @staticmethod
    def _as_mapping(data, names) -> Dict[str, np.ndarray]:
        if isinstance(data, Mapping):
            if names is not None:
                raise ValueError("names only apply to array input")
            return {str(k): np.asarray(v, dtype=np.float64)
                    for k, v in data.items()}
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 4:
            raise ValueError(f"expected (V, T, H, W), got {data.shape}")
        v = data.shape[0]
        if names is None:
            names = [f"var{i}" for i in range(v)]
        if len(names) != v:
            raise ValueError(f"{len(names)} names for {v} variables")
        return {str(n): data[i] for i, n in enumerate(names)}
