"""Multi-variable dataset compression.

The paper's datasets bundle several physical variables (E3SM: 5 climate
variables; S3D: 58 species; Table 1), each compressed as its own
``(T, H, W)`` stack.  This module drives *any registered codec* across
a ``(V, T, H, W)`` array (or a mapping of named variables), aggregates
the Eq. 11 accounting over all variables, and serializes everything
into one archive.

A single codec is shared across variables by default — the per-frame
normalization (Sec. 4.3) maps every variable into the same
zero-mean/unit-range domain the model was trained on.  A per-variable
mapping can be supplied when variables differ enough to merit dedicated
models.  Accepted codec descriptions (normalized via
:func:`repro.codecs.as_codec`): a :class:`~repro.codecs.base.Codec`, a
registry name (``"szlike"``), or a native compressor such as a trained
:class:`~repro.pipeline.compressor.LatentDiffusionCompressor`.

Variables are independent, so compression fans out over a
:class:`~repro.pipeline.executors.ThreadExecutor` (``max_workers``)
with the deterministic per-variable seeding the serial path used —
results are bit-identical either way.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..bound import Bound
from ..metrics import CompressionAccounting
from .blob import CompressedBlob
from .compressor import LatentDiffusionCompressor
from .container import (ArchiveIndexError, MemberIndex, as_source,
                        index_blob, read_index)
from .executors import ThreadExecutor

__all__ = ["MultiVarResult", "MultiVarArchive", "MultiVariableCompressor",
           "read_multivar_index"]

_MAGIC = b"LDMV"
_VERSION = 1
_VERSION_CODEC = 2     # adds envelope (non-blob codec) entries
_VERSION_INDEXED = 3   # v2 entry layout + footer index + trailer

_ENTRY_BLOB = 0
_ENTRY_ENVELOPE = 1

#: per-variable seed stride (prime; historical value kept so archives
#: produced by older revisions stay reproducible)
VAR_SEED_STRIDE = 104729


@dataclass
class MultiVarResult:
    """Per-variable codec results plus dataset-level accounting."""

    results: Dict[str, "object"]   # name -> CodecResult

    @property
    def variables(self) -> List[str]:
        return list(self.results)

    def accounting(self) -> CompressionAccounting:
        return CompressionAccounting(
            original_bytes=sum(r.accounting.original_bytes
                               for r in self.results.values()),
            latent_bytes=sum(r.accounting.latent_bytes
                             for r in self.results.values()),
            guarantee_bytes=sum(r.accounting.guarantee_bytes
                                for r in self.results.values()))

    @property
    def ratio(self) -> float:
        return self.accounting().ratio

    def worst_nrmse(self) -> float:
        return max(r.achieved_nrmse for r in self.results.values())

    def archive(self) -> "MultiVarArchive":
        """Serializable container; blob-native codecs store their blob,
        every other codec stores its tagged payload envelope."""
        from ..codecs import pack_envelope
        blobs: Dict[str, CompressedBlob] = {}
        envelopes: Dict[str, bytes] = {}
        for name, r in self.results.items():
            blob = getattr(r, "blob", None)
            if blob is not None:
                blobs[name] = blob
            else:
                envelopes[name] = pack_envelope(r.codec, r.payload)
        return MultiVarArchive(blobs=blobs, envelopes=envelopes)


@dataclass
class MultiVarArchive:
    """Named compressed-variable collection with (de)serialization.

    ``blobs`` holds latent-diffusion streams in their native
    :class:`CompressedBlob` form; ``envelopes`` holds any other codec's
    payload wrapped in a codec envelope.  The wire format stays at
    version 1 (bit-compatible with older archives) unless envelope
    entries are present.
    """

    blobs: Dict[str, CompressedBlob] = field(default_factory=dict)
    envelopes: Dict[str, bytes] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.blobs) + len(self.envelopes)

    def to_bytes(self, version: Optional[int] = None) -> bytes:
        """Serialize; ``version`` pins a legacy wire layout.

        The default writes the indexed v3 container (entry region
        byte-identical to v2, plus footer index + trailer).  ``1`` and
        ``2`` reproduce the historical layouts byte-for-byte — v1 is
        blob-only and rejects envelope entries.
        """
        if version is None:
            version = _VERSION_INDEXED
        if version not in (_VERSION, _VERSION_CODEC, _VERSION_INDEXED):
            raise ValueError(f"unsupported archive version {version}")
        if version == _VERSION and self.envelopes:
            raise ValueError("envelope entries need archive version "
                             ">= 2")
        parts = [_MAGIC, struct.pack("<BI", version, len(self))]
        pos = 4 + struct.calcsize("<BI")
        entries = [(name, _ENTRY_BLOB, blob.to_bytes())
                   for name, blob in self.blobs.items()]
        entries += [(name, _ENTRY_ENVELOPE, env)
                    for name, env in self.envelopes.items()]
        members = []
        for name, kind, payload in entries:
            tag = name.encode()
            if len(tag) > 255:
                raise ValueError(f"variable name too long: {name!r}")
            parts.append(struct.pack("<B", len(tag)))
            parts.append(tag)
            pos += 1 + len(tag)
            if version >= _VERSION_CODEC:
                parts.append(struct.pack("<B", kind))
                pos += 1
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
            pos += 4
            if version >= _VERSION_INDEXED:
                members.append(MemberIndex(
                    key=name, kind=kind, codec=_entry_codec(kind, payload),
                    variable=-1, t0=0, t1=0, offset=pos,
                    length=len(payload), crc32=zlib.crc32(payload)))
            pos += len(payload)
        if version >= _VERSION_INDEXED:
            parts.append(index_blob(members, footer_offset=pos))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MultiVarArchive":
        if data[:4] != _MAGIC:
            raise ValueError("not a multi-variable archive (bad magic)")
        version, count = struct.unpack_from("<BI", data, 4)
        if version not in (_VERSION, _VERSION_CODEC, _VERSION_INDEXED):
            raise ValueError(f"unsupported archive version {version}")
        pos = 4 + struct.calcsize("<BI")
        blobs: Dict[str, CompressedBlob] = {}
        envelopes: Dict[str, bytes] = {}
        for _ in range(count):
            tlen, = struct.unpack_from("<B", data, pos)
            pos += 1
            name = data[pos:pos + tlen].decode()
            pos += tlen
            kind = _ENTRY_BLOB
            if version >= _VERSION_CODEC:
                kind, = struct.unpack_from("<B", data, pos)
                pos += 1
            n, = struct.unpack_from("<I", data, pos)
            pos += 4
            payload = data[pos:pos + n]
            if len(payload) != n:
                raise ValueError("truncated archive: entry incomplete")
            if kind == _ENTRY_BLOB:
                blobs[name] = CompressedBlob.from_bytes(payload)
            elif kind == _ENTRY_ENVELOPE:
                envelopes[name] = payload
            else:
                raise ValueError(f"unknown archive entry kind {kind}")
            pos += n
        return cls(blobs=blobs, envelopes=envelopes)


def _entry_codec(kind: int, payload: bytes) -> str:
    """Codec name for a footer row; blobs carry no registry name."""
    if kind != _ENTRY_ENVELOPE:
        return ""
    from ..codecs import peek_envelope
    return peek_envelope(payload) or ""


def read_multivar_index(source) -> List[MemberIndex]:
    """Member index of a multi-variable archive.

    v3 archives answer from the footer in three small reads; legacy
    v1/v2 archives are scanned once and equivalent rows synthesized.
    ``variable``/``t0``/``t1`` carry no meaning for this container
    (``-1``/``0``/``0``); members are keyed by variable name, with
    ``kind`` separating blob and envelope entries.
    """
    source = as_source(source)
    head_size = 4 + struct.calcsize("<BI")
    head = source.read_at(0, head_size)
    if head[:4] != _MAGIC:
        raise ValueError("not a multi-variable archive (bad magic)")
    if len(head) < head_size:
        raise ArchiveIndexError(
            f"multi-variable archive is truncated below its "
            f"{head_size}-byte fixed header ({len(head)} bytes)")
    version, count = struct.unpack_from("<BI", head, 4)
    if version >= _VERSION_INDEXED:
        members = read_index(source)
        if members is None:
            raise ArchiveIndexError(
                f"multi-variable archive v{version} is missing its "
                f"footer index (truncated file?)")
        if len(members) != count:
            raise ArchiveIndexError(
                f"multi-variable archive header promises {count} "
                f"members but the footer indexes {len(members)}")
        return members
    data = source.read_all()
    if version not in (_VERSION, _VERSION_CODEC):
        raise ValueError(f"unsupported archive version {version}")
    members = []
    pos = 4 + struct.calcsize("<BI")
    for _ in range(count):
        tlen, = struct.unpack_from("<B", data, pos)
        pos += 1
        name = data[pos:pos + tlen].decode()
        pos += tlen
        kind = _ENTRY_BLOB
        if version >= _VERSION_CODEC:
            kind, = struct.unpack_from("<B", data, pos)
            pos += 1
        n, = struct.unpack_from("<I", data, pos)
        pos += 4
        payload = data[pos:pos + n]
        if len(payload) != n:
            raise ValueError("truncated archive: entry incomplete")
        members.append(MemberIndex(
            key=name, kind=kind, codec=_entry_codec(kind, payload),
            variable=-1, t0=0, t1=0, offset=pos, length=n,
            crc32=zlib.crc32(payload)))
        pos += n
    return members


CodecLike = Union[LatentDiffusionCompressor, str, "object"]


class MultiVariableCompressor:
    """Compress/decompress a set of variables with shared or dedicated
    codecs.

    Parameters
    ----------
    compressor:
        One shared codec description, or a mapping ``variable name ->
        codec description`` (every variable to be compressed must then
        have an entry).  See the module docstring for accepted forms.
    max_workers:
        Worker threads for per-variable fan-out (1 = serial; results
        are bit-identical regardless).
    """

    def __init__(self, compressor: Union[CodecLike,
                                         Mapping[str, CodecLike]],
                 max_workers: int = 1):
        from ..codecs import as_codec
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._executor = ThreadExecutor(max_workers)
        self._shared = None
        self._per_var: Dict[str, "object"] = {}
        if isinstance(compressor, Mapping):
            if not compressor:
                raise ValueError("empty compressor mapping")
            self._per_var = {str(k): as_codec(v)
                             for k, v in compressor.items()}
        else:
            self._shared = as_codec(compressor)

    def _for(self, name: str):
        if self._shared is not None:
            return self._shared
        try:
            return self._per_var[name]
        except KeyError:
            raise KeyError(f"no codec for variable {name!r}") from None

    # ------------------------------------------------------------------
    def compress(self, data: Union[np.ndarray, Mapping[str, np.ndarray]],
                 names: Optional[Sequence[str]] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 noise_seed: int = 0,
                 bound: Optional[Bound] = None) -> MultiVarResult:
        """Compress every variable.

        ``data`` is either a ``(V, T, H, W)`` array (variables named
        ``names`` or ``var0..var{V-1}``) or an explicit name→stack
        mapping.  Bounds apply per variable — a first-class ``bound``
        (:class:`~repro.bound.Bound`) or the legacy ``error_bound``
        (absolute L2 tau) / ``nrmse_bound`` kwargs; either way each
        variable normalizes against its own statistics.
        """
        target = Bound.coalesce(bound=bound, error_bound=error_bound,
                                nrmse_bound=nrmse_bound)
        stacks = self._as_mapping(data, names)
        # resolve codecs eagerly so a missing mapping entry raises
        # before any work is scheduled
        jobs = [(vi, name, stack, self._for(name))
                for vi, (name, stack) in enumerate(stacks.items())]

        def task(job):
            vi, name, stack, codec = job
            return name, codec.compress_bounded(
                stack, bound=target,
                seed=noise_seed + VAR_SEED_STRIDE * vi)

        results = dict(self._executor.map(task, jobs))
        # the executor preserves order, but rebuild by stack order for
        # deterministic iteration anyway
        return MultiVarResult(
            results={name: results[name] for name in stacks})

    def decompress(self, archive: MultiVarArchive
                   ) -> Dict[str, np.ndarray]:
        """Reconstruct every variable from an archive."""
        from ..codecs import unpack_envelope
        jobs = []
        for name, blob in archive.blobs.items():
            jobs.append((name, blob, None))
        for name, env in archive.envelopes.items():
            jobs.append((name, None, env))

        def task(job):
            name, blob, env = job
            codec = self._for(name)
            if blob is not None:
                if hasattr(codec, "decompress_blob"):
                    return name, codec.decompress_blob(blob)
                return name, codec.decompress(blob.to_bytes())
            codec_name, payload = unpack_envelope(env)
            if codec_name != codec.name:
                raise ValueError(
                    f"variable {name!r} was written by codec "
                    f"{codec_name!r} but {codec.name!r} is configured")
            return name, codec.decompress(payload)

        return dict(self._executor.map(task, jobs))

    # ------------------------------------------------------------------
    @staticmethod
    def _as_mapping(data, names) -> Dict[str, np.ndarray]:
        if isinstance(data, Mapping):
            if names is not None:
                raise ValueError("names only apply to array input")
            return {str(k): np.asarray(v, dtype=np.float64)
                    for k, v in data.items()}
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 4:
            raise ValueError(f"expected (V, T, H, W), got {data.shape}")
        v = data.shape[0]
        if names is None:
            names = [f"var{i}" for i in range(v)]
        if len(names) != v:
            raise ValueError(f"{len(names)} names for {v} variables")
        return {str(n): data[i] for i, n in enumerate(names)}
