"""Model-bundle persistence for the latent-diffusion compressor.

A bundle is a single ``.npz`` holding the VAE, diffusion and
PCA-corrector state plus the configuration — one file moves a trained
compressor between machines.  Historically this lived in the CLI; it
is pipeline infrastructure (the codec layer and examples load bundles
too), so it now lives here and the CLI re-exports it.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from ..compression import VAEHyperprior
from ..config import DiffusionConfig, PipelineConfig, VAEConfig
from ..diffusion import ConditionalDDPM
from ..postprocess import ErrorBoundCorrector, ResidualPCA
from .compressor import LatentDiffusionCompressor

__all__ = ["save_bundle", "load_bundle"]


def save_bundle(path: str, compressor: LatentDiffusionCompressor) -> None:
    """Serialize a trained compressor (weights + config + corrector)."""
    cfg = {
        "vae": dataclasses.asdict(compressor.vae.cfg),
        "diffusion": dataclasses.asdict(compressor.ddpm.cfg),
        "pipeline": dataclasses.asdict(compressor.config),
        "schedule_steps": compressor.ddpm.schedule.steps,
        "original_dtype_bytes": compressor.original_dtype_bytes,
    }
    arrays = {}
    for name, arr in compressor.vae.state_dict().items():
        arrays[f"vae/{name}"] = arr
    for name, arr in compressor.ddpm.state_dict().items():
        arrays[f"ddpm/{name}"] = arr
    if compressor.corrector is not None:
        pca = compressor.corrector.pca
        arrays["pca/basis"] = pca.basis
        cfg["pca"] = {"block": pca.block, "rank": pca.rank,
                      "coeff_quant_bits":
                          compressor.corrector.coeff_quant_bits}
    arrays["config_json"] = np.frombuffer(
        json.dumps(cfg).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_bundle(path: str) -> LatentDiffusionCompressor:
    """Inverse of :func:`save_bundle`."""
    with np.load(path) as archive:
        cfg = json.loads(bytes(archive["config_json"]).decode())
        vae_cfg = VAEConfig(**cfg["vae"])
        diff_cfg = DiffusionConfig(
            **{k: tuple(v) if k == "channel_mults" else v
               for k, v in cfg["diffusion"].items()})
        pipe_cfg = PipelineConfig(**cfg["pipeline"])
        vae = VAEHyperprior(vae_cfg)
        vae.load_state_dict({k[len("vae/"):]: archive[k]
                             for k in archive.files
                             if k.startswith("vae/")})
        ddpm = ConditionalDDPM(diff_cfg)
        ddpm.load_state_dict({k[len("ddpm/"):]: archive[k]
                              for k in archive.files
                              if k.startswith("ddpm/")})
        ddpm.set_schedule(int(cfg["schedule_steps"]))
        corrector = None
        if "pca/basis" in archive.files:
            pca = ResidualPCA.from_state({
                "block": cfg["pca"]["block"], "rank": cfg["pca"]["rank"],
                "basis": archive["pca/basis"]})
            corrector = ErrorBoundCorrector(
                pca, coeff_quant_bits=cfg["pca"]["coeff_quant_bits"])
        return LatentDiffusionCompressor(
            vae, ddpm, pipe_cfg, corrector=corrector,
            original_dtype_bytes=int(cfg["original_dtype_bytes"]))
