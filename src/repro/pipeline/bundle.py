"""Model-bundle persistence for the latent-diffusion compressor.

A bundle is a single ``.npz`` that moves a trained compressor between
machines.  This module is now a thin adapter over the codec-agnostic
artifact layer (:mod:`repro.pipeline.artifacts`): :func:`save_bundle`
writes a standard codec artifact (state arrays + provenance manifest)
and :func:`load_bundle` reads both the artifact format and the legacy
pre-manifest layout, so every bundle ever written keeps loading.

The split of the state (de)serialization into
:func:`compressor_state` / :func:`compressor_from_state` is what lets
the ``"ours"`` codec satisfy the uniform
:meth:`~repro.codecs.base.Codec.artifact_state` contract with the
exact on-disk layout bundles have always used.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

import numpy as np

from ..compression import VAEHyperprior
from ..config import DiffusionConfig, PipelineConfig, VAEConfig
from ..diffusion import ConditionalDDPM
from ..postprocess import ErrorBoundCorrector, ResidualPCA
from .compressor import LatentDiffusionCompressor

__all__ = ["save_bundle", "load_bundle", "compressor_state",
           "compressor_from_state"]


def compressor_state(compressor: LatentDiffusionCompressor
                     ) -> Dict[str, np.ndarray]:
    """Flatten a compressor to ``{name: array}`` (bundle layout).

    Keys: ``vae/*`` and ``ddpm/*`` weights, ``pca/basis`` when a
    corrector is fitted, and ``config_json`` (uint8-encoded JSON with
    every config plus schedule/dtype metadata).
    """
    cfg = {
        "vae": dataclasses.asdict(compressor.vae.cfg),
        "diffusion": dataclasses.asdict(compressor.ddpm.cfg),
        "pipeline": dataclasses.asdict(compressor.config),
        "schedule_steps": compressor.ddpm.schedule.steps,
        "original_dtype_bytes": compressor.original_dtype_bytes,
    }
    arrays: Dict[str, np.ndarray] = {}
    for name, arr in compressor.vae.state_dict().items():
        arrays[f"vae/{name}"] = arr
    for name, arr in compressor.ddpm.state_dict().items():
        arrays[f"ddpm/{name}"] = arr
    if compressor.corrector is not None:
        pca = compressor.corrector.pca
        arrays["pca/basis"] = pca.basis
        cfg["pca"] = {"block": pca.block, "rank": pca.rank,
                      "coeff_quant_bits":
                          compressor.corrector.coeff_quant_bits}
    arrays["config_json"] = np.frombuffer(
        json.dumps(cfg).encode(), dtype=np.uint8)
    return arrays


def compressor_from_state(state: Dict[str, np.ndarray]
                          ) -> LatentDiffusionCompressor:
    """Inverse of :func:`compressor_state`."""
    cfg = json.loads(bytes(state["config_json"]).decode())
    vae_cfg = VAEConfig(**cfg["vae"])
    diff_cfg = DiffusionConfig(
        **{k: tuple(v) if k == "channel_mults" else v
           for k, v in cfg["diffusion"].items()})
    pipe_cfg = PipelineConfig(**cfg["pipeline"])
    vae = VAEHyperprior(vae_cfg)
    vae.load_state_dict({k[len("vae/"):]: state[k]
                         for k in state if k.startswith("vae/")})
    ddpm = ConditionalDDPM(diff_cfg)
    ddpm.load_state_dict({k[len("ddpm/"):]: state[k]
                          for k in state if k.startswith("ddpm/")})
    ddpm.set_schedule(int(cfg["schedule_steps"]))
    corrector = None
    if "pca/basis" in state:
        pca = ResidualPCA.from_state({
            "block": cfg["pca"]["block"], "rank": cfg["pca"]["rank"],
            "basis": state["pca/basis"]})
        corrector = ErrorBoundCorrector(
            pca, coeff_quant_bits=cfg["pca"]["coeff_quant_bits"])
    return LatentDiffusionCompressor(
        vae, ddpm, pipe_cfg, corrector=corrector,
        original_dtype_bytes=int(cfg["original_dtype_bytes"]))


def save_bundle(path: str, compressor: LatentDiffusionCompressor) -> None:
    """Serialize a trained compressor (weights + config + corrector).

    Writes an artifact-format ``.npz`` (state + manifest) that
    :func:`load_bundle`, ``repro info`` and the process-pool executor
    all understand.
    """
    from ..codecs.diffusion import LatentDiffusionCodec
    from .artifacts import save_artifact
    save_artifact(path, LatentDiffusionCodec(compressor=compressor))


def load_bundle(path: str) -> LatentDiffusionCompressor:
    """Inverse of :func:`save_bundle` (legacy bundles included)."""
    from .artifacts import is_artifact, load_artifact
    if is_artifact(path):
        return load_artifact(path).compressor
    with np.load(path) as archive:
        return compressor_from_state(
            {k: archive[k] for k in archive.files})
