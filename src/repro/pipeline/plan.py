"""Deterministic shard planning for dataset-scale sweeps.

The paper's evaluation is a ``dataset x variables x time-window`` grid.
:func:`plan_shards` turns one :class:`~repro.data.registry.DatasetSpec`
into an ordered :class:`ShardPlan` of :class:`ShardTask`\\ s — each a
*recipe* (dataset spec + variable + time slice + seed), not an array —
so a plan is tiny, picklable and cheap to ship to any executor backend,
including process pools on other cores (and, later, other nodes).

Determinism guarantees:

* **stable IDs** — ``<dataset>/s<seed>/v<var>/t<t0>-<t1>`` identifies a
  shard independently of plan order, worker or machine;
* **stable seeds** — shard ``i`` (in plan order) compresses with
  ``base_seed + 7919 * i``, the same prime-stride rule the engine has
  always used for window batches, so re-planning the same grid always
  reproduces the same streams;
* **stable order** — variables iterate outermost, time windows
  innermost, both ascending.

The module also defines the *shard archive*: a container that holds
one envelope-wrapped payload per shard plus enough geometry
(variable, time slice) to stitch the decoded shards back into a
``(T, H, W)`` or ``(V, T, H, W)`` array.  The CLI writes it for
``repro compress --dataset ... --shards N`` and auto-detects it on
decompress.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.base import SpatiotemporalDataset
from ..data.registry import (DatasetSpec, dataset_from_spec,
                             get_dataset_spec, spec_of)

__all__ = ["ShardTask", "ShardPlan", "plan_shards", "time_slices",
           "ShardEntry", "pack_shard_archive", "unpack_shard_archive",
           "is_shard_archive", "assemble_shards", "SHARD_MAGIC"]

#: Per-shard seed stride; must match
#: :data:`repro.pipeline.engine.SEED_STRIDE` (kept literal here to
#: avoid an import cycle — the engine consumes plans, not vice versa).
SEED_STRIDE = 7919

SHARD_MAGIC = b"SHRD"


@dataclass(frozen=True)
class ShardTask:
    """One unit of planned work: frames ``[t0:t1)`` of one variable.

    Frozen, hashable and picklable; :meth:`materialize` regenerates the
    frames deterministically wherever the task lands.
    """

    shard_id: str
    index: int
    dataset: DatasetSpec
    variable: int
    t0: int
    t1: int
    seed: int

    @property
    def frames_shape(self) -> Tuple[int, int, int]:
        return (self.t1 - self.t0, self.dataset.h, self.dataset.w)

    def materialize(self) -> np.ndarray:
        """Generate this shard's ``(t1-t0, H, W)`` frames.

        Generation is memoized per ``(spec, variable)`` so the shards
        of one variable share a single generation pass — without the
        cache an N-shard plan would regenerate the full variable N
        times (once per task, in whichever process runs it).
        """
        return _variable_frames(self.dataset,
                                self.variable)[self.t0:self.t1].copy()


@lru_cache(maxsize=8)
def _variable_frames(spec: DatasetSpec, variable: int) -> np.ndarray:
    """One variable's full frame stack (deterministic, cache-safe)."""
    return dataset_from_spec(spec).frames(variable)


@dataclass(frozen=True)
class ShardPlan:
    """Ordered, deterministic list of shard tasks for one dataset."""

    dataset: DatasetSpec
    tasks: Tuple[ShardTask, ...]
    base_seed: int = 0
    seed_stride: int = SEED_STRIDE

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, i):
        return self.tasks[i]

    @property
    def variables(self) -> Tuple[int, ...]:
        return tuple(sorted({t.variable for t in self.tasks}))

    def total_frames(self) -> int:
        return sum(t.t1 - t.t0 for t in self.tasks)


def time_slices(t: int, window: Optional[int] = None,
                shards: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``[0, t)`` into contiguous ``(t0, t1)`` slices.

    ``window`` gives fixed-length windows (last one may be short);
    ``shards`` gives that many contiguous chunks whose lengths differ
    by at most one frame (short chunks first).  Giving neither returns
    the whole range; giving both is an error.
    """
    if t < 1:
        raise ValueError(f"need at least one frame, got t={t}")
    if window is not None and shards is not None:
        raise ValueError("give window or shards, not both")
    if window is not None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        return [(s, min(s + window, t)) for s in range(0, t, window)]
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        shards = min(shards, t)
        bounds = np.linspace(0, t, shards + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1]))
                for i in range(shards)]
    return [(0, t)]


def plan_shards(dataset: Union[str, DatasetSpec, SpatiotemporalDataset],
                variables: Optional[Sequence[int]] = None,
                window: Optional[int] = None,
                shards: Optional[int] = None,
                base_seed: int = 0,
                seed_stride: int = SEED_STRIDE,
                **dataset_overrides) -> ShardPlan:
    """Plan the ``variables x time-slices`` grid of one dataset.

    ``dataset`` may be a registry name (``dataset_overrides`` are
    forwarded to :func:`~repro.data.registry.get_dataset`), a
    :class:`DatasetSpec`, or a dataset instance.  ``variables`` defaults
    to every variable of the dataset; the time axis splits per
    :func:`time_slices`.
    """
    if isinstance(dataset, str):
        spec = get_dataset_spec(dataset, **dataset_overrides)
    elif isinstance(dataset, DatasetSpec):
        spec = dataset.override(**dataset_overrides) \
            if dataset_overrides else dataset
    elif isinstance(dataset, SpatiotemporalDataset):
        if dataset_overrides:
            raise ValueError("dataset overrides require a name or spec")
        spec = spec_of(dataset)
    else:
        raise TypeError(f"cannot plan over {type(dataset).__name__}; "
                        f"pass a dataset name, DatasetSpec or instance")

    if variables is None:
        variables = range(spec.num_vars)
    variables = list(variables)
    for v in variables:
        if not 0 <= v < spec.num_vars:
            raise ValueError(f"variable {v} outside "
                             f"[0, {spec.num_vars})")

    slices = time_slices(spec.t, window=window, shards=shards)
    tasks = []
    for var in variables:
        for t0, t1 in slices:
            i = len(tasks)
            tasks.append(ShardTask(
                shard_id=(f"{spec.name}/s{spec.seed}/v{var}/"
                          f"t{t0:04d}-{t1:04d}"),
                index=i, dataset=spec, variable=var, t0=t0, t1=t1,
                seed=base_seed + seed_stride * i))
    return ShardPlan(dataset=spec, tasks=tuple(tasks),
                     base_seed=base_seed, seed_stride=seed_stride)


# ----------------------------------------------------------------------
# Shard archive: container stitching sharded payloads back together.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardEntry:
    """One archived shard: geometry plus its (enveloped) payload."""

    shard_id: str
    variable: int
    t0: int
    t1: int
    payload: bytes


def pack_shard_archive(entries: Sequence[ShardEntry]) -> bytes:
    """Serialize shard entries into a self-contained archive."""
    parts = [SHARD_MAGIC, struct.pack("<HI", 1, len(entries))]
    for e in entries:
        sid = e.shard_id.encode()
        if not 0 < len(sid) <= 0xFFFF:
            raise ValueError(f"bad shard id {e.shard_id!r}")
        parts.append(struct.pack("<H", len(sid)))
        parts.append(sid)
        parts.append(struct.pack("<IIIQ", e.variable, e.t0, e.t1,
                                 len(e.payload)))
        parts.append(e.payload)
    return b"".join(parts)


def is_shard_archive(data: bytes) -> bool:
    return data[:4] == SHARD_MAGIC


def unpack_shard_archive(data: bytes) -> List[ShardEntry]:
    """Inverse of :func:`pack_shard_archive`."""
    if not is_shard_archive(data):
        raise ValueError("not a shard archive (bad magic)")
    version, count = struct.unpack_from("<HI", data, 4)
    if version != 1:
        raise ValueError(f"unsupported shard archive version {version}")
    pos = 4 + struct.calcsize("<HI")
    entries = []
    for _ in range(count):
        slen, = struct.unpack_from("<H", data, pos)
        pos += 2
        sid = data[pos:pos + slen].decode()
        pos += slen
        variable, t0, t1, n = struct.unpack_from("<IIIQ", data, pos)
        pos += struct.calcsize("<IIIQ")
        payload = data[pos:pos + n]
        if len(payload) != n:
            raise ValueError("truncated shard archive")
        pos += n
        entries.append(ShardEntry(shard_id=sid, variable=variable,
                                  t0=t0, t1=t1, payload=payload))
    return entries


def assemble_shards(entries: Sequence[ShardEntry],
                    arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stitch decoded shard arrays back into one stack.

    Returns ``(T, H, W)`` for a single-variable archive and
    ``(V, T, H, W)`` otherwise (variables indexed in sorted order).
    """
    if len(entries) != len(arrays):
        raise ValueError("one decoded array per entry required")
    if not entries:
        raise ValueError("empty shard archive")
    variables = sorted({e.variable for e in entries})
    var_index = {v: i for i, v in enumerate(variables)}
    t_total = max(e.t1 for e in entries)
    h, w = np.asarray(arrays[0]).shape[-2:]
    out = np.zeros((len(variables), t_total, h, w),
                   dtype=np.asarray(arrays[0]).dtype)
    seen = np.zeros((len(variables), t_total), dtype=bool)
    for e, arr in zip(entries, arrays):
        arr = np.asarray(arr)
        if arr.shape != (e.t1 - e.t0, h, w):
            raise ValueError(f"shard {e.shard_id!r} decoded to "
                             f"{arr.shape}, expected "
                             f"{(e.t1 - e.t0, h, w)}")
        vi = var_index[e.variable]
        if seen[vi, e.t0:e.t1].any():
            raise ValueError(f"shard {e.shard_id!r} overlaps another "
                             f"shard")
        out[vi, e.t0:e.t1] = arr
        seen[vi, e.t0:e.t1] = True
    if not seen.all():
        raise ValueError("shard archive leaves gaps in the time axis")
    return out[0] if len(variables) == 1 else out
