"""Deterministic shard planning for dataset-scale sweeps.

The paper's evaluation is a ``dataset x variables x time-window`` grid.
:func:`plan_shards` turns one :class:`~repro.data.registry.DatasetSpec`
into an ordered :class:`ShardPlan` of :class:`ShardTask`\\ s — each a
*recipe* (dataset spec + variable + time slice + seed), not an array —
so a plan is tiny, picklable and cheap to ship to any executor backend,
including process pools on other cores (and, later, other nodes).

Determinism guarantees:

* **stable IDs** — ``<dataset>/s<seed>/v<var>/t<t0>-<t1>`` identifies a
  shard independently of plan order, worker or machine;
* **stable seeds** — shard ``i`` (in plan order) compresses with
  ``base_seed + 7919 * i``, the same prime-stride rule the engine has
  always used for window batches, so re-planning the same grid always
  reproduces the same streams;
* **stable order** — variables iterate outermost, time windows
  innermost, both ascending.

The module also defines the *shard archive*: a container that holds
one envelope-wrapped payload per shard plus enough geometry
(variable, time slice) to stitch the decoded shards back into a
``(T, H, W)`` or ``(V, T, H, W)`` array.  The CLI writes it for
``repro compress --dataset ... --shards N`` and auto-detects it on
decompress.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.base import SpatiotemporalDataset
from ..data.registry import (DatasetSpec, dataset_from_spec,
                             get_dataset_spec, spec_of)
from .container import (MEMBER_BLOB, MEMBER_ENVELOPE, ArchiveIndexError,
                        MemberIndex, as_source, index_blob, read_index)

__all__ = ["ShardTask", "ShardPlan", "plan_shards", "time_slices",
           "ShardEntry", "pack_shard_archive", "unpack_shard_archive",
           "is_shard_archive", "assemble_shards", "assemble_window",
           "read_shard_index", "SHARD_MAGIC", "SHARD_VERSION"]

#: Per-shard seed stride; must match
#: :data:`repro.pipeline.engine.SEED_STRIDE` (kept literal here to
#: avoid an import cycle — the engine consumes plans, not vice versa).
SEED_STRIDE = 7919

SHARD_MAGIC = b"SHRD"
#: current shard-archive wire version.  v2 appends a footer index
#: (:mod:`repro.pipeline.container`) after the member region; the
#: member region itself is byte-identical to v1, so v1 readers of the
#: entry scan keep working and v1 archives stay fully decodable.
SHARD_VERSION = 2

_HEAD_FMT = "<HI"
_ENTRY_GEOM = "<IIIQ"


@dataclass(frozen=True)
class ShardTask:
    """One unit of planned work: frames ``[t0:t1)`` of one variable.

    Frozen, hashable and picklable; :meth:`materialize` regenerates the
    frames deterministically wherever the task lands.
    """

    shard_id: str
    index: int
    dataset: DatasetSpec
    variable: int
    t0: int
    t1: int
    seed: int

    @property
    def frames_shape(self) -> Tuple[int, int, int]:
        return (self.t1 - self.t0, self.dataset.h, self.dataset.w)

    def materialize(self) -> np.ndarray:
        """Generate this shard's ``(t1-t0, H, W)`` frames.

        Generation is memoized per ``(spec, variable)`` so the shards
        of one variable share a single generation pass — without the
        cache an N-shard plan would regenerate the full variable N
        times (once per task, in whichever process runs it).
        """
        return _variable_frames(self.dataset,
                                self.variable)[self.t0:self.t1].copy()


@lru_cache(maxsize=8)
def _variable_frames(spec: DatasetSpec, variable: int) -> np.ndarray:
    """One variable's full frame stack (deterministic, cache-safe)."""
    return dataset_from_spec(spec).frames(variable)


@dataclass(frozen=True)
class ShardPlan:
    """Ordered, deterministic list of shard tasks for one dataset."""

    dataset: DatasetSpec
    tasks: Tuple[ShardTask, ...]
    base_seed: int = 0
    seed_stride: int = SEED_STRIDE

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, i):
        return self.tasks[i]

    @property
    def variables(self) -> Tuple[int, ...]:
        return tuple(sorted({t.variable for t in self.tasks}))

    def total_frames(self) -> int:
        return sum(t.t1 - t.t0 for t in self.tasks)


def time_slices(t: int, window: Optional[int] = None,
                shards: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``[0, t)`` into contiguous ``(t0, t1)`` slices.

    ``window`` gives fixed-length windows (last one may be short);
    ``shards`` gives that many contiguous chunks whose lengths differ
    by at most one frame (short chunks first).  Giving neither returns
    the whole range; giving both is an error.
    """
    if t < 1:
        raise ValueError(f"need at least one frame, got t={t}")
    if window is not None and shards is not None:
        raise ValueError("give window or shards, not both")
    if window is not None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        return [(s, min(s + window, t)) for s in range(0, t, window)]
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        shards = min(shards, t)
        bounds = np.linspace(0, t, shards + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1]))
                for i in range(shards)]
    return [(0, t)]


def plan_shards(dataset: Union[str, DatasetSpec, SpatiotemporalDataset],
                variables: Optional[Sequence[int]] = None,
                window: Optional[int] = None,
                shards: Optional[int] = None,
                base_seed: int = 0,
                seed_stride: int = SEED_STRIDE,
                **dataset_overrides) -> ShardPlan:
    """Plan the ``variables x time-slices`` grid of one dataset.

    ``dataset`` may be a registry name (``dataset_overrides`` are
    forwarded to :func:`~repro.data.registry.get_dataset`), a
    :class:`DatasetSpec`, or a dataset instance.  ``variables`` defaults
    to every variable of the dataset; the time axis splits per
    :func:`time_slices`.
    """
    if isinstance(dataset, str):
        spec = get_dataset_spec(dataset, **dataset_overrides)
    elif isinstance(dataset, DatasetSpec):
        spec = dataset.override(**dataset_overrides) \
            if dataset_overrides else dataset
    elif isinstance(dataset, SpatiotemporalDataset):
        if dataset_overrides:
            raise ValueError("dataset overrides require a name or spec")
        spec = spec_of(dataset)
    else:
        raise TypeError(f"cannot plan over {type(dataset).__name__}; "
                        f"pass a dataset name, DatasetSpec or instance")

    if variables is None:
        variables = range(spec.num_vars)
    variables = list(variables)
    for v in variables:
        if not 0 <= v < spec.num_vars:
            raise ValueError(f"variable {v} outside "
                             f"[0, {spec.num_vars})")

    slices = time_slices(spec.t, window=window, shards=shards)
    tasks = []
    for var in variables:
        for t0, t1 in slices:
            i = len(tasks)
            tasks.append(ShardTask(
                shard_id=(f"{spec.name}/s{spec.seed}/v{var}/"
                          f"t{t0:04d}-{t1:04d}"),
                index=i, dataset=spec, variable=var, t0=t0, t1=t1,
                seed=base_seed + seed_stride * i))
    return ShardPlan(dataset=spec, tasks=tuple(tasks),
                     base_seed=base_seed, seed_stride=seed_stride)


# ----------------------------------------------------------------------
# Shard archive: container stitching sharded payloads back together.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardEntry:
    """One archived shard: geometry plus its (enveloped) payload."""

    shard_id: str
    variable: int
    t0: int
    t1: int
    payload: bytes


def _payload_codec(payload: bytes) -> Tuple[int, str]:
    """Member kind + codec name for a footer row (header peek only)."""
    from ..codecs import peek_envelope
    name = peek_envelope(payload)
    if name is None:
        return MEMBER_BLOB, ""
    return MEMBER_ENVELOPE, name


def pack_shard_archive(entries: Sequence[ShardEntry], *,
                       version: int = SHARD_VERSION) -> bytes:
    """Serialize shard entries into a self-contained archive.

    ``version=2`` (the default) appends a footer index mapping every
    shard to its byte extent and CRC-32 so readers can seek straight
    to one member; ``version=1`` reproduces the legacy layout
    byte-for-byte.
    """
    if version not in (1, SHARD_VERSION):
        raise ValueError(f"unsupported shard archive version {version}")
    parts = [SHARD_MAGIC, struct.pack(_HEAD_FMT, version, len(entries))]
    pos = 4 + struct.calcsize(_HEAD_FMT)
    members = []
    for e in entries:
        sid = e.shard_id.encode()
        if not 0 < len(sid) <= 0xFFFF:
            raise ValueError(f"bad shard id {e.shard_id!r}")
        parts.append(struct.pack("<H", len(sid)))
        parts.append(sid)
        parts.append(struct.pack(_ENTRY_GEOM, e.variable, e.t0, e.t1,
                                 len(e.payload)))
        parts.append(e.payload)
        pos += 2 + len(sid) + struct.calcsize(_ENTRY_GEOM)
        if version >= 2:
            kind, codec = _payload_codec(e.payload)
            members.append(MemberIndex(
                key=e.shard_id, kind=kind, codec=codec,
                variable=e.variable, t0=e.t0, t1=e.t1, offset=pos,
                length=len(e.payload), crc32=zlib.crc32(e.payload)))
        pos += len(e.payload)
    if version >= 2:
        parts.append(index_blob(members, footer_offset=pos))
    return b"".join(parts)


def is_shard_archive(data: bytes) -> bool:
    return data[:4] == SHARD_MAGIC


def unpack_shard_archive(data: bytes) -> List[ShardEntry]:
    """Inverse of :func:`pack_shard_archive`.

    The sequential entry scan is version-independent — v2's footer
    sits after the ``count`` scanned entries and is simply not
    visited, so this reader accepts both versions.
    """
    if not is_shard_archive(data):
        raise ValueError("not a shard archive (bad magic)")
    version, count = struct.unpack_from(_HEAD_FMT, data, 4)
    if version not in (1, SHARD_VERSION):
        raise ValueError(f"unsupported shard archive version {version}")
    pos = 4 + struct.calcsize(_HEAD_FMT)
    entries = []
    for _ in range(count):
        slen, = struct.unpack_from("<H", data, pos)
        pos += 2
        sid = data[pos:pos + slen].decode()
        pos += slen
        variable, t0, t1, n = struct.unpack_from(_ENTRY_GEOM, data, pos)
        pos += struct.calcsize(_ENTRY_GEOM)
        payload = data[pos:pos + n]
        if len(payload) != n:
            raise ValueError("truncated shard archive")
        pos += n
        entries.append(ShardEntry(shard_id=sid, variable=variable,
                                  t0=t0, t1=t1, payload=payload))
    return entries


def read_shard_index(source) -> List[MemberIndex]:
    """Member index of a shard archive, reading as little as possible.

    For a v2 archive this costs three small reads (head + trailer +
    footer).  For a legacy v1 archive there is no footer, so the
    member region is scanned once (a full read) and equivalent index
    rows are synthesized — same result, linear cost.
    """
    source = as_source(source)
    head_size = 4 + struct.calcsize(_HEAD_FMT)
    head = source.read_at(0, head_size)
    if head[:4] != SHARD_MAGIC:
        raise ValueError("not a shard archive (bad magic)")
    if len(head) < head_size:
        raise ArchiveIndexError(
            f"shard archive is truncated below its {head_size}-byte "
            f"fixed header ({len(head)} bytes)")
    version, count = struct.unpack_from(_HEAD_FMT, head, 4)
    if version >= 2:
        members = read_index(source)
        if members is None:
            raise ArchiveIndexError(
                f"shard archive v{version} is missing its footer "
                f"index (truncated file?)")
        if len(members) != count:
            raise ArchiveIndexError(
                f"shard archive header promises {count} members but "
                f"the footer indexes {len(members)}")
        return members
    data = source.read_all()
    members = []
    pos = 4 + struct.calcsize(_HEAD_FMT)
    for e in unpack_shard_archive(data):
        sid = e.shard_id.encode()
        pos += 2 + len(sid) + struct.calcsize(_ENTRY_GEOM)
        kind, codec = _payload_codec(e.payload)
        members.append(MemberIndex(
            key=e.shard_id, kind=kind, codec=codec, variable=e.variable,
            t0=e.t0, t1=e.t1, offset=pos, length=len(e.payload),
            crc32=zlib.crc32(e.payload)))
        pos += len(e.payload)
    return members


def assemble_shards(entries: Sequence[ShardEntry],
                    arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stitch decoded shard arrays back into one stack.

    Returns ``(T, H, W)`` for a single-variable archive and
    ``(V, T, H, W)`` otherwise (variables indexed in sorted order).
    The full time axis ``[0, max t1)`` must be covered.
    """
    if not entries:
        raise ValueError("empty shard archive")
    return assemble_window(entries, arrays, t0=0,
                           t1=max(e.t1 for e in entries))


def assemble_window(entries: Sequence[ShardEntry],
                    arrays: Sequence[np.ndarray],
                    t0: Optional[int] = None,
                    t1: Optional[int] = None) -> np.ndarray:
    """Stitch decoded shards covering the time window ``[t0, t1)``.

    The generalization behind partial decode: entries may overhang the
    window (their overhang is trimmed), but together they must tile
    ``[t0, t1)`` for every variable present, with no overlap inside
    the window.  Defaults cover exactly the entries' own extent.
    Returns ``(t1-t0, H, W)`` for one variable, ``(V, t1-t0, H, W)``
    otherwise.
    """
    if len(entries) != len(arrays):
        raise ValueError("one decoded array per entry required")
    if not entries:
        raise ValueError("no shards selected")
    if t0 is None:
        t0 = min(e.t0 for e in entries)
    if t1 is None:
        t1 = max(e.t1 for e in entries)
    if not 0 <= t0 < t1:
        raise ValueError(f"bad time window [{t0}, {t1})")
    span = t1 - t0
    variables = sorted({e.variable for e in entries})
    var_index = {v: i for i, v in enumerate(variables)}
    h, w = np.asarray(arrays[0]).shape[-2:]
    out = np.zeros((len(variables), span, h, w),
                   dtype=np.asarray(arrays[0]).dtype)
    seen = np.zeros((len(variables), span), dtype=bool)
    for e, arr in zip(entries, arrays):
        arr = np.asarray(arr)
        if arr.shape != (e.t1 - e.t0, h, w):
            raise ValueError(f"shard {e.shard_id!r} decoded to "
                             f"{arr.shape}, expected "
                             f"{(e.t1 - e.t0, h, w)}")
        a, b = max(e.t0, t0), min(e.t1, t1)
        if a >= b:
            raise ValueError(f"shard {e.shard_id!r} lies outside the "
                             f"window [{t0}, {t1})")
        vi = var_index[e.variable]
        if seen[vi, a - t0:b - t0].any():
            raise ValueError(f"shard {e.shard_id!r} overlaps another "
                             f"shard")
        out[vi, a - t0:b - t0] = arr[a - e.t0:b - e.t0]
        seen[vi, a - t0:b - t0] = True
    if not seen.all():
        raise ValueError("selected shards leave gaps in the time axis")
    return out[0] if len(variables) == 1 else out
