"""The end-to-end latent-diffusion compressor (Figs. 1, Sec. 3).

Compression path, per temporal window of ``N`` frames:

1. per-frame normalization (zero mean, unit range — Sec. 4.3);
2. VAE-encode the *keyframes only*, round, and entropy-code them with
   the hyperprior (Sec. 3.1);
3. decode the keyframe latents back (bit-exact), min-max normalize
   them, and run the conditional latent diffusion sampler to generate
   the non-keyframe latents (Sec. 3.3);
4. VAE-decode the full latent window and denormalize — this *is* the
   decompressor's output, simulated at compression time;
5. run the PCA error-bound corrector on the residual (Sec. 3.5) and
   attach its payload.

The decompressor repeats steps 3-4 (deterministically: DDIM + a seed
stored in the blob) and applies the correction payload, so the error
bound established at compression time is exactly preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..compression import VAEHyperprior, dequantize_minmax, minmax_normalize
from ..config import PipelineConfig
from ..diffusion import (ConditionalDDPM, KeyframeSpec, generate_latents,
                         generate_latents_batched, keyframe_spec)
from ..metrics import CompressionAccounting, nrmse
from ..postprocess import ErrorBoundCorrector
from .blob import CompressedBlob

__all__ = ["LatentDiffusionCompressor", "CompressionResult"]

#: Windows denoised per batched UNet forward.  Caps the working set of
#: the stacked sampler (noise + activation buffers scale with the batch)
#: while still amortizing model overhead across a shard sweep.
MAX_BATCH_WINDOWS = 16


@dataclass
class CompressionResult:
    """Blob plus bookkeeping returned by :meth:`~LatentDiffusionCompressor.compress`."""

    blob: CompressedBlob
    accounting: CompressionAccounting
    reconstruction: np.ndarray      # the decompressor's exact output
    achieved_nrmse: float

    @property
    def ratio(self) -> float:
        return self.accounting.ratio


def window_starts(t: int, window: int) -> List[int]:
    """Window origins covering ``[0, t)``; the last window is shifted
    back so every frame is covered exactly once per decode pass."""
    if t < window:
        raise ValueError(f"need at least {window} frames, got {t}")
    starts = list(range(0, t - window + 1, window))
    if starts[-1] + window < t:
        starts.append(t - window)
    return starts


class LatentDiffusionCompressor:
    """Public compress/decompress API tying all stages together.

    Parameters
    ----------
    vae:
        Trained :class:`~repro.compression.VAEHyperprior`.
    ddpm:
        Trained :class:`~repro.diffusion.ConditionalDDPM` (already
        fine-tuned to its deployment step count, if applicable).
    config:
        Pipeline settings (window, keyframe strategy, sampler).
    corrector:
        Optional fitted :class:`~repro.postprocess.ErrorBoundCorrector`;
        required when compressing with an error bound.
    """

    def __init__(self, vae: VAEHyperprior, ddpm: ConditionalDDPM,
                 config: PipelineConfig,
                 corrector: Optional[ErrorBoundCorrector] = None,
                 original_dtype_bytes: int = 4):
        if config.window != ddpm.cfg.num_frames:
            raise ValueError(
                f"pipeline window {config.window} != diffusion num_frames "
                f"{ddpm.cfg.num_frames}")
        self.vae = vae
        self.ddpm = ddpm
        self.config = config
        self.corrector = corrector
        self.original_dtype_bytes = original_dtype_bytes
        self.vae.eval()
        self.ddpm.eval()

    # ------------------------------------------------------------------
    def spec(self) -> KeyframeSpec:
        return keyframe_spec(self.config.window,
                             self.config.keyframe_strategy,
                             interval=self.config.keyframe_interval)

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 noise_seed: int = 0) -> CompressionResult:
        """Compress a ``(T, H, W)`` frame stack.

        ``error_bound`` is the absolute L2 bound ``tau`` of Sec. 3.5;
        ``nrmse_bound`` instead derives ``tau`` from a target NRMSE
        (Eq. 12).  With neither, no correction payload is produced.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound is not None and nrmse_bound is not None:
            raise ValueError("give either error_bound or nrmse_bound")
        T, H, W = frames.shape
        spec = self.spec()
        cfg = self.config

        normalized, norms = self._normalize_frames(frames)
        starts = window_starts(T, cfg.window)
        # Batch the keyframes of every window into ONE entropy-coded
        # stream: coder termination and model headers are paid once,
        # not per window — this is where the keyframe-only storage
        # advantage over every-frame baselines materializes in bytes.
        key_frames = np.concatenate(
            [normalized[start:start + cfg.window][spec.cond_idx]
             for start in starts], axis=0)[:, None]      # (n_win*K,1,H,W)
        streams, y_int_all = self.vae.compress(key_frames)

        # windows cover [0, T) exactly, so every element of recon_norm is
        # written below — no need to zero-fill
        recon_norm = np.empty_like(normalized)
        recons = self._reconstruct_windows(y_int_all, spec, noise_seed)
        for w_i, start in enumerate(starts):
            recon_norm[start:start + cfg.window] = recons[w_i]

        recon = self._denormalize_frames(recon_norm, norms)
        blob = CompressedBlob(
            shape=(T, H, W), window=cfg.window,
            keyframe_strategy=cfg.keyframe_strategy,
            keyframe_interval=cfg.keyframe_interval,
            sampler=cfg.sampler, sample_steps=cfg.sample_steps,
            noise_seed=noise_seed, frame_norms=norms,
            y_stream=streams["y_stream"], z_stream=streams["z_stream"],
            y_header=streams["y_header"], z_header=streams["z_header"],
            y_shape=streams["y_shape"], z_shape=streams["z_shape"],
            entropy_backend=streams.get("entropy_backend", "arithmetic"))

        tau = error_bound
        if nrmse_bound is not None:
            data_range = float(frames.max() - frames.min())
            tau = nrmse_bound * data_range * np.sqrt(frames.size)
        if tau is not None:
            if self.corrector is None:
                raise ValueError(
                    "error-bounded compression requires a fitted corrector")
            res = self.corrector.correct(frames, recon, tau)
            blob.bound_payload = res.payload
            recon = res.corrected

        acc = CompressionAccounting(
            original_bytes=frames.size * self.original_dtype_bytes,
            latent_bytes=blob.latent_bytes(),
            guarantee_bytes=blob.guarantee_bytes())
        return CompressionResult(blob=blob, accounting=acc,
                                 reconstruction=recon,
                                 achieved_nrmse=nrmse(frames, recon))

    # ------------------------------------------------------------------
    def decompress(self, blob: CompressedBlob) -> np.ndarray:
        """Reconstruct frames from a blob (mirrors :meth:`compress`)."""
        T, H, W = blob.shape
        spec = keyframe_spec(blob.window, blob.keyframe_strategy,
                             interval=blob.keyframe_interval)
        starts = window_starts(T, blob.window)
        y_int_all = self.vae.decompress_latents(blob.streams_dict())
        recon_norm = np.empty((T, H, W))
        recons = self._reconstruct_windows(y_int_all, spec, blob.noise_seed,
                                           sampler=blob.sampler,
                                           steps=blob.sample_steps)
        for w_i, start in enumerate(starts):
            recon_norm[start:start + blob.window] = recons[w_i]
        recon = self._denormalize_frames(recon_norm, blob.frame_norms)
        if blob.bound_payload:
            if self.corrector is None:
                raise ValueError(
                    "blob carries an error-bound payload but no corrector "
                    "is attached")
            recon = self.corrector.apply(recon, blob.bound_payload)
        return recon

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_frames(frames: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
        mean = frames.mean(axis=(1, 2))
        rng_ = frames.max(axis=(1, 2)) - frames.min(axis=(1, 2))
        rng_ = np.where(rng_ < 1e-30, 1.0, rng_)
        norms = np.stack([mean, rng_], axis=1).astype(np.float32)
        out = (frames - norms[:, 0, None, None]) / norms[:, 1, None, None]
        return out, norms

    @staticmethod
    def _denormalize_frames(frames: np.ndarray,
                            norms: np.ndarray) -> np.ndarray:
        norms = np.asarray(norms, dtype=np.float64)
        return frames * norms[:, 1, None, None] + norms[:, 0, None, None]

    def _reconstruct_window(self, key_latents: np.ndarray,
                            spec: KeyframeSpec, seed: int,
                            sampler: Optional[str] = None,
                            steps: Optional[int] = None) -> np.ndarray:
        """Shared by compress (simulation) and decompress (real decode)."""
        sampler = sampler or self.config.sampler
        steps = steps or self.config.sample_steps
        K, C, h, w = key_latents.shape
        N = spec.n
        # min-max normalization constants derive from the keyframe
        # latents only, so the decoder reproduces them bit-exactly.
        key_norm, lo, hi = minmax_normalize(key_latents)
        cond = np.zeros((1, N, C, h, w))
        cond[0, spec.cond_idx] = key_norm
        rng = np.random.default_rng(seed)
        latents_norm = generate_latents(self.ddpm, cond, spec,
                                        sampler=sampler, steps=steps,
                                        rng=rng)[0]
        latents = dequantize_minmax(latents_norm, lo, hi)
        # keyframes decode from their exact integer latents
        latents[spec.cond_idx] = key_latents
        frames = self.vae.decode_latents(latents[:, :, :, :])
        return frames[:, 0]

    def _reconstruct_windows(self, y_int_all: np.ndarray,
                             spec: KeyframeSpec, base_seed: int,
                             sampler: Optional[str] = None,
                             steps: Optional[int] = None) -> np.ndarray:
        """Batched twin of :meth:`_reconstruct_window` over all windows.

        Window ``w_i`` seeds its own generator with ``base_seed + w_i``
        and min-max normalizes from its own keyframe latents, so each
        window's reconstruction is bit-identical to the sequential
        per-window path; the UNet simply runs over stacked windows
        (chunks of :data:`MAX_BATCH_WINDOWS`) in one batched forward.
        """
        sampler = sampler or self.config.sampler
        steps = steps or self.config.sample_steps
        K, N = spec.num_cond, spec.n
        _, C, h, w = y_int_all.shape
        n_win = y_int_all.shape[0] // K
        out = None
        for w0 in range(0, n_win, MAX_BATCH_WINDOWS):
            w1 = min(w0 + MAX_BATCH_WINDOWS, n_win)
            nb = w1 - w0
            # min-max normalization constants derive from the keyframe
            # latents only, so the decoder reproduces them bit-exactly.
            cond = np.zeros((nb, N, C, h, w))
            bounds = []
            for b in range(nb):
                keys = y_int_all[(w0 + b) * K:(w0 + b + 1) * K]
                key_norm, lo, hi = minmax_normalize(keys)
                cond[b, spec.cond_idx] = key_norm
                bounds.append((lo, hi))
            rngs = [np.random.default_rng(base_seed + w0 + b)
                    for b in range(nb)]
            latents_norm = generate_latents_batched(
                self.ddpm, cond, spec, sampler=sampler, steps=steps,
                rngs=rngs)
            latents = np.empty_like(latents_norm)
            for b, (lo, hi) in enumerate(bounds):
                latents[b] = dequantize_minmax(latents_norm[b], lo, hi)
                # keyframes decode from their exact integer latents
                latents[b, spec.cond_idx] = \
                    y_int_all[(w0 + b) * K:(w0 + b + 1) * K]
            frames = self.vae.decode_latents(
                latents.reshape(nb * N, C, h, w))
            H, W = frames.shape[2], frames.shape[3]
            if out is None:
                out = np.empty((n_win, N, H, W))
            out[w0:w1] = frames[:, 0].reshape(nb, N, H, W)
        return out
