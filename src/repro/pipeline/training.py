"""Two-stage training protocol (Sec. 3.4) plus corrector fitting.

Stage 1 trains the VAE with hyperprior on individual frames under the
rate-distortion loss (Eq. 8) with the paper's step-decay LR and
λ-doubling schedules.  Stage 2 freezes the encoder and trains the
conditional latent diffusion model (Algorithm 1), optionally followed
by few-step fine-tuning (Sec. 4.6).  Finally the PCA residual basis is
fitted on training-set reconstruction residuals so the deployed
compressor can enforce error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..compression import RDLoss, VAEHyperprior
from ..compression.quantization import minmax_normalize
from ..config import ReproConfig
from ..diffusion import EMA, ConditionalDDPM, finetune_steps, keyframe_spec
from ..nn import Tensor, no_grad
from ..nn.optim import Adam, StepLR, clip_grad_norm
from ..postprocess import ErrorBoundCorrector, ResidualPCA
from .compressor import LatentDiffusionCompressor

__all__ = ["TrainingConfig", "TwoStageTrainer", "train_compressor"]


def _normalize_window(window: np.ndarray) -> np.ndarray:
    """Per-frame zero-mean / unit-range normalization.

    Must match ``LatentDiffusionCompressor._normalize_frames`` exactly —
    the VAE and diffusion model are trained in this normalized domain
    and the compressor feeds them the same transform at inference.
    """
    out, _ = LatentDiffusionCompressor._normalize_frames(
        np.asarray(window, dtype=np.float64))
    return out


@dataclass
class TrainingConfig:
    """Iteration counts and optimizer settings for both stages.

    Defaults are test-scale; the paper-scale values are recorded in the
    comments (Sec. 4.3).
    """

    vae_iters: int = 200           # paper: 500_000
    vae_lr: float = 1e-3           # paper: 1e-3
    vae_lr_decay_every: int = 80   # paper: 100_000 (x0.5)
    vae_batch: int = 4             # paper: 16
    lam: float = 1e-6              # paper: 1e-5 doubled at 250K; raw bit
    #                                sums scale with crop size, so small
    #                                crops need a smaller lambda
    diffusion_iters: int = 400     # paper: 500_000
    diffusion_lr: float = 1e-3     # paper: 1e-4
    diffusion_batch: int = 4       # paper: 64
    finetune_iters: int = 50       # paper: 200_000
    grad_clip: float = 1.0
    ema_decay: float = 0.0         # 0 = off; e.g. 0.999 to sample from
    #                                an EMA of the diffusion weights
    log_every: int = 0             # 0 = silent


@dataclass
class TrainingHistory:
    vae_losses: List[float] = field(default_factory=list)
    diffusion_losses: List[float] = field(default_factory=list)
    finetune_losses: List[float] = field(default_factory=list)


class TwoStageTrainer:
    """Drives stage-1 (VAE) and stage-2 (diffusion) training."""

    def __init__(self, config: ReproConfig, train_cfg: TrainingConfig,
                 seed: int = 0):
        self.config = config
        self.train_cfg = train_cfg
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.vae = VAEHyperprior(config.vae, rng=rng)
        self.ddpm = ConditionalDDPM(config.diffusion, rng=rng)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_vae(self, windows: Sequence[np.ndarray],
                  on_step: Optional[Callable[[int, float], None]] = None
                  ) -> None:
        """Stage 1: rate–distortion training on random frames."""
        tc = self.train_cfg
        frames = np.concatenate([_normalize_window(w) for w in windows],
                                axis=0)  # (F, H, W), normalized domain
        rng = np.random.default_rng((self.seed, 1))
        opt = Adam(self.vae.parameters(), lr=tc.vae_lr)
        sched = StepLR(opt, step_size=tc.vae_lr_decay_every, gamma=0.5)
        loss_fn = RDLoss(lam=tc.lam)
        self.vae.train()
        for it in range(tc.vae_iters):
            idx = rng.integers(0, frames.shape[0], size=tc.vae_batch)
            batch = Tensor(frames[idx][:, None])
            opt.zero_grad()
            out = self.vae(batch, rng=rng)
            res = loss_fn(batch, out)
            res.loss.backward()
            clip_grad_norm(self.vae.parameters(), tc.grad_clip)
            opt.step()
            sched.step()
            self.history.vae_losses.append(res.loss.item())
            if on_step:
                on_step(it, res.loss.item())
        self.vae.eval()

    # ------------------------------------------------------------------
    def _latent_windows(self, windows: Sequence[np.ndarray]) -> np.ndarray:
        """Encode windows with the frozen VAE into normalized latents."""
        outs = []
        for wdw in windows:
            y = self.vae.encode_latents(_normalize_window(wdw)[:, None])
            y_norm, _, _ = minmax_normalize(y)
            outs.append(y_norm)
        return np.stack(outs)  # (W, N, C, h, w)

    def train_diffusion(self, windows: Sequence[np.ndarray],
                        on_step: Optional[Callable[[int, float], None]] = None
                        ) -> None:
        """Stage 2: Algorithm 1 on frozen-encoder latents."""
        tc = self.train_cfg
        spec = keyframe_spec(self.config.pipeline.window,
                             self.config.pipeline.keyframe_strategy,
                             interval=self.config.pipeline.keyframe_interval)
        latents = self._latent_windows(windows)
        rng = np.random.default_rng((self.seed, 2))
        opt = Adam(self.ddpm.parameters(), lr=tc.diffusion_lr)
        ema = (EMA(self.ddpm, decay=tc.ema_decay)
               if tc.ema_decay > 0 else None)
        self.ddpm.train()
        for it in range(tc.diffusion_iters):
            idx = rng.integers(0, latents.shape[0],
                               size=min(tc.diffusion_batch,
                                        latents.shape[0]))
            loss = self.ddpm.training_loss(latents[idx], spec, rng)
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(self.ddpm.parameters(), tc.grad_clip)
            opt.step()
            if ema is not None:
                ema.update()
            self.history.diffusion_losses.append(loss.item())
            if on_step:
                on_step(it, loss.item())
        if ema is not None:
            # sample from the averaged weights, as diffusion codebases do
            ema.copy_to()
        self.ddpm.eval()

    def finetune_diffusion(self, windows: Sequence[np.ndarray],
                           steps: Optional[int] = None) -> None:
        """Few-step fine-tuning (Sec. 4.6)."""
        tc = self.train_cfg
        steps = steps or self.config.diffusion.finetune_steps
        spec = keyframe_spec(self.config.pipeline.window,
                             self.config.pipeline.keyframe_strategy,
                             interval=self.config.pipeline.keyframe_interval)
        latents = self._latent_windows(windows)
        rng = np.random.default_rng((self.seed, 3))
        batches = (latents[rng.integers(0, latents.shape[0],
                                        size=min(tc.diffusion_batch,
                                                 latents.shape[0]))]
                   for _ in range(tc.finetune_iters))
        self.ddpm.train()
        finetune_steps(self.ddpm, steps, batches, spec,
                       lr=tc.diffusion_lr * 0.1, rng=rng,
                       grad_clip=tc.grad_clip,
                       on_step=lambda i, l:
                       self.history.finetune_losses.append(l))
        self.ddpm.eval()

    # ------------------------------------------------------------------
    def fit_corrector(self, windows: Sequence[np.ndarray],
                      max_windows: int = 4) -> ErrorBoundCorrector:
        """Fit the PCA residual basis on training reconstructions."""
        pcfg = self.config.pipeline
        compressor = LatentDiffusionCompressor(self.vae, self.ddpm, pcfg)
        residuals = []
        for wdw in list(windows)[:max_windows]:
            wdw = np.asarray(wdw)
            res = compressor.compress(wdw)
            residuals.append(wdw - res.reconstruction)
        pca = ResidualPCA(block=pcfg.pca_block, rank=pcfg.pca_rank)
        pca.fit(np.concatenate(residuals, axis=0))
        return ErrorBoundCorrector(pca,
                                   coeff_quant_bits=pcfg.coeff_quant_bits)

    def build_compressor(self, windows: Sequence[np.ndarray],
                         original_dtype_bytes: int = 4
                         ) -> LatentDiffusionCompressor:
        """Assemble the deployable compressor (with fitted corrector)."""
        corrector = self.fit_corrector(windows)
        return LatentDiffusionCompressor(
            self.vae, self.ddpm, self.config.pipeline, corrector=corrector,
            original_dtype_bytes=original_dtype_bytes)

    def export_artifact(self, target, windows: Sequence[np.ndarray],
                        dataset: Optional[dict] = None,
                        original_dtype_bytes: int = 4):
        """Build the deployable compressor and persist it as a codec
        artifact with training provenance.

        ``target`` is either an :class:`~repro.pipeline.artifacts.
        ArtifactStore` (returns the content-addressed key) or a file
        path (returns the :class:`~repro.pipeline.artifacts.
        ArtifactManifest`).  The manifest records this trainer's
        :class:`TrainingConfig`, seed and — when given — the dataset
        spec the windows came from, so ``repro info`` can answer
        "what trained this model, on what data".
        """
        import dataclasses as _dc

        from ..codecs.diffusion import LatentDiffusionCodec
        from .artifacts import ArtifactStore, save_artifact
        codec = LatentDiffusionCodec(compressor=self.build_compressor(
            windows, original_dtype_bytes=original_dtype_bytes))
        training = {**_dc.asdict(self.train_cfg), "seed": self.seed}
        if isinstance(target, ArtifactStore):
            return target.put(codec, training=training, dataset=dataset)
        return save_artifact(target, codec, training=training,
                             dataset=dataset)


    # ------------------------------------------------------------------
    # stage-boundary checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str) -> None:
        """Persist trainer state (weights + configs + loss history).

        Checkpoints sit at stage boundaries — the natural protocol is
        ``train_vae -> save``, then ``from_checkpoint -> train_diffusion``
        (possibly on another machine): stage 2 only needs the frozen
        stage-1 encoder, exactly as in Sec. 3.4.
        """
        import dataclasses
        import json
        cfg = {
            "vae": dataclasses.asdict(self.config.vae),
            "diffusion": dataclasses.asdict(self.config.diffusion),
            "pipeline": dataclasses.asdict(self.config.pipeline),
            "train": dataclasses.asdict(self.train_cfg),
            "seed": self.seed,
            "schedule_steps": self.ddpm.schedule.steps,
        }
        arrays = {f"vae/{k}": v for k, v in self.vae.state_dict().items()}
        arrays.update({f"ddpm/{k}": v
                       for k, v in self.ddpm.state_dict().items()})
        arrays["history/vae"] = np.asarray(self.history.vae_losses)
        arrays["history/diffusion"] = np.asarray(
            self.history.diffusion_losses)
        arrays["history/finetune"] = np.asarray(
            self.history.finetune_losses)
        arrays["config_json"] = np.frombuffer(
            json.dumps(cfg).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)

    @classmethod
    def from_checkpoint(cls, path: str) -> "TwoStageTrainer":
        """Rebuild a trainer (weights, configs, history) from disk."""
        import json

        from ..config import (DiffusionConfig, PipelineConfig, ReproConfig,
                              VAEConfig)
        with np.load(path) as archive:
            cfg = json.loads(bytes(archive["config_json"]).decode())
            config = ReproConfig(
                vae=VAEConfig(**cfg["vae"]),
                diffusion=DiffusionConfig(
                    **{k: tuple(v) if k == "channel_mults" else v
                       for k, v in cfg["diffusion"].items()}),
                pipeline=PipelineConfig(**cfg["pipeline"]))
            trainer = cls(config, TrainingConfig(**cfg["train"]),
                          seed=int(cfg["seed"]))
            trainer.vae.load_state_dict(
                {k[len("vae/"):]: archive[k] for k in archive.files
                 if k.startswith("vae/")})
            trainer.ddpm.load_state_dict(
                {k[len("ddpm/"):]: archive[k] for k in archive.files
                 if k.startswith("ddpm/")})
            trainer.ddpm.set_schedule(int(cfg["schedule_steps"]))
            trainer.history.vae_losses = list(archive["history/vae"])
            trainer.history.diffusion_losses = list(
                archive["history/diffusion"])
            trainer.history.finetune_losses = list(
                archive["history/finetune"])
        return trainer


def train_compressor(config: ReproConfig, windows: Sequence[np.ndarray],
                     train_cfg: Optional[TrainingConfig] = None,
                     seed: int = 0, finetune: bool = True,
                     original_dtype_bytes: int = 4
                     ) -> LatentDiffusionCompressor:
    """One-call convenience: full two-stage training -> compressor."""
    trainer = TwoStageTrainer(config, train_cfg or TrainingConfig(),
                              seed=seed)
    trainer.train_vae(windows)
    trainer.train_diffusion(windows)
    if finetune:
        trainer.finetune_diffusion(windows)
    return trainer.build_compressor(
        windows, original_dtype_bytes=original_dtype_bytes)
