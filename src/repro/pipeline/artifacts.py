"""Codec-agnostic artifact layer: portable trained-codec state.

PR 1–2 made every *untrained* codec spec-portable (registry → planner
→ executor), but trained state was trapped in memory: only the
latent-diffusion pipeline could be persisted, through the bespoke
``pipeline/bundle.py``.  This module generalizes that into a
content-addressed artifact layer any trainable codec plugs into:

* an **artifact** is one ``.npz`` file holding the codec's trained
  state arrays (``state/<name>``) plus a JSON manifest
  (:class:`ArtifactManifest`) recording the codec name, the untrained
  construction spec, optional training/dataset provenance and a
  SHA-256 state hash;
* :func:`save_artifact` / :func:`load_artifact` are the file-level
  primitives, implemented against the uniform
  :meth:`~repro.codecs.base.Codec.artifact_state` /
  :meth:`~repro.codecs.base.Codec.load_artifact_state` contract every
  trainable codec provides;
* :class:`ArtifactStore` is a content-addressed directory of
  artifacts (``objects/<codec>-<hash16>.npz`` + ``index.json``), so
  trained models move between machines and process-pool workers as
  plain files keyed by what they contain;
* a codec loaded from (or saved to) an artifact carries the artifact
  path in :meth:`~repro.codecs.base.Codec.to_spec`, making *trained*
  codecs spec-portable: :class:`~repro.pipeline.executors.
  ProcessExecutor` workers rebuild them from ``spec + artifact path``
  instead of raising.

Legacy ``save_bundle``/``load_bundle`` ``.npz`` files predate the
manifest; :mod:`repro.pipeline.bundle` is now a thin adapter that
writes artifacts and still reads both formats.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zipfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..nn.serialization import state_digest

__all__ = ["ArtifactManifest", "ArtifactStore", "save_artifact",
           "load_artifact", "read_manifest", "is_artifact",
           "ARTIFACT_FORMAT_VERSION", "MANIFEST_KEY", "STATE_PREFIX"]

PathLike = Union[str, os.PathLike]

ARTIFACT_FORMAT_VERSION = 1
MANIFEST_KEY = "manifest_json"
STATE_PREFIX = "state/"

#: config dataclasses allowed to travel inside manifest spec params
#: (anything else must already be JSON-serializable).
_CONFIG_TAG = "__config__"


def _config_types() -> Dict[str, type]:
    from ..config import DiffusionConfig, PipelineConfig, VAEConfig
    return {"VAEConfig": VAEConfig, "DiffusionConfig": DiffusionConfig,
            "PipelineConfig": PipelineConfig}


def encode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe encoding of codec constructor params.

    Config dataclasses become tagged dicts; tuples survive as lists
    (the config constructors re-tuple where it matters).
    """
    names = {cls: name for name, cls in _config_types().items()}
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if type(value) in names:
            out[key] = {_CONFIG_TAG: names[type(value)],
                        **dataclasses.asdict(value)}
        else:
            out[key] = value
    return out


def decode_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`encode_params`."""
    types = _config_types()
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if isinstance(value, dict) and _CONFIG_TAG in value:
            kwargs = {k: v for k, v in value.items() if k != _CONFIG_TAG}
            cls = types[value[_CONFIG_TAG]]
            kwargs = {k: tuple(v) if isinstance(v, list) else v
                      for k, v in kwargs.items()}
            out[key] = cls(**kwargs)
        else:
            out[key] = value
    return out


@dataclass
class ArtifactManifest:
    """Provenance record stored inside every artifact ``.npz``.

    ``spec`` is the *untrained* construction recipe
    (``{"codec": name, "params": {...}}``, params JSON-encoded via
    :func:`encode_params`); ``state_hash`` content-addresses the
    trained arrays; ``training`` and ``dataset`` are free-form
    provenance dicts (training config / :class:`~repro.data.registry.
    DatasetSpec` fields).
    """

    codec: str
    spec: Dict[str, Any]
    state_hash: str
    format_version: int = ARTIFACT_FORMAT_VERSION
    training: Optional[Dict[str, Any]] = None
    dataset: Optional[Dict[str, Any]] = None

    @property
    def key(self) -> str:
        """Content-addressed identifier (store filename stem)."""
        return f"{self.codec}-{self.state_hash[:16]}"

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactManifest":
        return cls(**json.loads(text))


# ----------------------------------------------------------------------
# File-level primitives
# ----------------------------------------------------------------------
def save_artifact(path: PathLike, codec, *,
                  training: Optional[Dict[str, Any]] = None,
                  dataset: Optional[Dict[str, Any]] = None
                  ) -> ArtifactManifest:
    """Persist a trainable codec's state as a self-describing artifact.

    The codec keeps a reference to the written file, so
    :meth:`~repro.codecs.base.Codec.to_spec` works afterwards even for
    trained state — saving *is* what makes a trained codec portable.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez_compressed appends it; keep the
        #                 recorded artifact reference pointing at the
        #                 file that actually exists
    state = codec.artifact_state()
    manifest = ArtifactManifest(
        codec=codec.codec_id,
        spec={"codec": codec.codec_id,
              "params": encode_params(codec.artifact_params())},
        state_hash=state_digest(state),
        training=training, dataset=dataset)
    arrays = {STATE_PREFIX + k: v for k, v in state.items()}
    arrays[MANIFEST_KEY] = np.frombuffer(manifest.to_json().encode(),
                                         dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    codec._artifact = os.fspath(path)
    return manifest


def is_artifact(path: PathLike) -> bool:
    """True if ``path`` is an ``.npz`` carrying an artifact manifest."""
    try:
        with zipfile.ZipFile(path) as zf:
            return f"{MANIFEST_KEY}.npy" in zf.namelist()
    except (OSError, zipfile.BadZipFile, KeyError):
        return False


def read_manifest(path: PathLike) -> ArtifactManifest:
    """Read just the manifest (cheap provenance inspection)."""
    with np.load(path) as archive:
        if MANIFEST_KEY not in archive.files:
            raise ValueError(f"{os.fspath(path)!r} is not a codec "
                             f"artifact (no manifest)")
        return ArtifactManifest.from_json(
            bytes(archive[MANIFEST_KEY]).decode())


def load_artifact(path: PathLike, verify: bool = True):
    """Rebuild a trained codec from an artifact file.

    The untrained codec is constructed from the manifest spec through
    the registry, then trained state is restored via
    :meth:`~repro.codecs.base.Codec.load_artifact_state`.  With
    ``verify`` (default) the state hash is recomputed and checked.
    The returned codec is spec-portable: its :meth:`to_spec` carries
    the artifact path, so process-pool workers can rebuild it.

    Codec classes whose state is self-contained may provide a
    ``from_artifact_state(state)`` classmethod to construct directly
    from the arrays; otherwise the untrained codec is built from the
    manifest spec and :meth:`~repro.codecs.base.Codec.
    load_artifact_state` restores the weights in place.
    """
    from ..codecs import codec_specs, get_codec
    with np.load(path) as archive:
        if MANIFEST_KEY not in archive.files:
            raise ValueError(f"{os.fspath(path)!r} is not a codec "
                             f"artifact (no manifest)")
        manifest = ArtifactManifest.from_json(
            bytes(archive[MANIFEST_KEY]).decode())
        state = {k[len(STATE_PREFIX):]: archive[k]
                 for k in archive.files if k.startswith(STATE_PREFIX)}
    if verify:
        digest = state_digest(state)
        if digest != manifest.state_hash:
            raise ValueError(
                f"artifact {os.fspath(path)!r} is corrupt: state hash "
                f"{digest[:16]} != manifest {manifest.state_hash[:16]}")
    name = manifest.spec["codec"]
    entry = codec_specs().get(name)
    builder = getattr(entry.cls, "from_artifact_state", None) \
        if entry is not None else None
    if builder is not None:
        # self-contained state: skip building a throwaway untrained
        # model (matters per process-pool worker rebuilding trained
        # codecs from specs)
        codec = builder(state)
    else:
        params = decode_params(dict(manifest.spec.get("params", {})))
        codec = get_codec(name, **params)
        codec.load_artifact_state(state)
    codec._spec_params = None          # state came from disk, not init
    codec._artifact = os.fspath(path)
    return codec


# ----------------------------------------------------------------------
# Content-addressed store
# ----------------------------------------------------------------------
class ArtifactStore:
    """Directory of content-addressed codec artifacts.

    Layout::

        <root>/objects/<codec>-<hash16>.npz   the artifacts
        <root>/index.json                     key -> manifest summary

    ``put`` is idempotent: saving the same trained state twice yields
    the same key and overwrites the object file with identical content
    (artifacts carry no timestamps).  Keys are stable across machines,
    so a store directory can be rsync'd between nodes of a sweep and
    every worker resolves the same ``key -> file`` mapping.
    """

    def __init__(self, root: PathLike):
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        os.makedirs(self.objects_dir, exist_ok=True)
        self.index_path = os.path.join(self.root, "index.json")

    # -- index ----------------------------------------------------------
    def _read_index(self) -> Dict[str, Dict[str, Any]]:
        if not os.path.exists(self.index_path):
            return {}
        with open(self.index_path) as fh:
            return json.load(fh)

    def _write_index(self, index: Dict[str, Dict[str, Any]]) -> None:
        tmp = self.index_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(index, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.index_path)

    # -- public API -----------------------------------------------------
    def put(self, codec, *, training: Optional[Dict[str, Any]] = None,
            dataset: Optional[Dict[str, Any]] = None) -> str:
        """Store a trained codec; returns its content-addressed key."""
        # stage under a unique name (concurrent puts into a shared
        # store must not clobber each other's half-written files),
        # then publish atomically under the content-addressed key;
        # the ".npz" suffix is required so np.savez keeps the path
        import tempfile
        fd, path = tempfile.mkstemp(suffix=".npz", prefix="incoming-",
                                    dir=self.objects_dir)
        os.close(fd)
        try:
            manifest = save_artifact(path, codec, training=training,
                                     dataset=dataset)
            final = os.path.join(self.objects_dir,
                                 manifest.key + ".npz")
            os.replace(path, final)
        finally:
            if os.path.exists(path):
                os.unlink(path)
        codec._artifact = final
        index = self._read_index()
        index[manifest.key] = {
            "codec": manifest.codec,
            "state_hash": manifest.state_hash,
            "path": os.path.relpath(final, self.root),
            "training": manifest.training,
            "dataset": manifest.dataset,
        }
        self._write_index(index)
        return manifest.key

    def path_for(self, key: str) -> str:
        """Absolute object path for a key (must exist)."""
        path = os.path.join(self.objects_dir, key + ".npz")
        if not os.path.exists(path):
            known = ", ".join(self.keys()) or "<empty store>"
            raise KeyError(f"unknown artifact {key!r}; stored: {known}")
        return path

    def get(self, key: str, verify: bool = True):
        """Rebuild the trained codec stored under ``key``."""
        return load_artifact(self.path_for(key), verify=verify)

    def manifest(self, key: str) -> ArtifactManifest:
        return read_manifest(self.path_for(key))

    def keys(self) -> List[str]:
        """Sorted keys of every stored artifact (from the objects dir,
        so the index never has to be trusted blindly)."""
        return sorted(os.path.splitext(name)[0]
                      for name in os.listdir(self.objects_dir)
                      if name.endswith(".npz")
                      and not name.startswith("incoming-"))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(os.path.join(self.objects_dir,
                                           key + ".npz"))

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArtifactStore {self.root!r} ({len(self)} artifacts)>"
