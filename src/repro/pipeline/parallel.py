"""Window-parallel compression over a worker pool.

Scientific archives hold many independent variables/windows; their
compression is embarrassingly parallel.  This module fans window
compression out over a thread pool — NumPy's BLAS kernels release the
GIL, so threads scale for the matrix-heavy encoder/sampler work without
the pickling cost a process pool would add for model weights.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from .compressor import CompressionResult, LatentDiffusionCompressor

__all__ = ["compress_windows_parallel"]


def compress_windows_parallel(compressor: LatentDiffusionCompressor,
                              stacks: Sequence[np.ndarray],
                              error_bound: Optional[float] = None,
                              nrmse_bound: Optional[float] = None,
                              max_workers: int = 4,
                              base_seed: int = 0
                              ) -> List[CompressionResult]:
    """Compress many independent frame stacks concurrently.

    Each stack gets a deterministic seed derived from ``base_seed`` and
    its position, so results are reproducible regardless of scheduling
    order.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")

    def task(i_stack):
        i, stack = i_stack
        return i, compressor.compress(
            np.asarray(stack), error_bound=error_bound,
            nrmse_bound=nrmse_bound, noise_seed=base_seed + 7919 * i)

    if max_workers == 1 or len(stacks) == 1:
        return [task((i, s))[1] for i, s in enumerate(stacks)]

    results: List[Optional[CompressionResult]] = [None] * len(stacks)
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for i, res in pool.map(task, enumerate(stacks)):
            results[i] = res
    return results  # type: ignore[return-value]
