"""Window-parallel compression (deprecated legacy shim).

The worker-pool logic that used to live here is now the general
:class:`~repro.pipeline.engine.CodecEngine`, which runs *any*
registered codec over batches of windows through pluggable executor
backends.  This module keeps the original convenience function for
existing callers — with a :class:`DeprecationWarning` — preserving the
historical deterministic seeding (``base_seed + 7919 * i``).
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

import numpy as np

from .compressor import CompressionResult, LatentDiffusionCompressor
from .engine import SEED_STRIDE, CodecEngine

__all__ = ["compress_windows_parallel"]


def compress_windows_parallel(compressor: LatentDiffusionCompressor,
                              stacks: Sequence[np.ndarray],
                              error_bound: Optional[float] = None,
                              nrmse_bound: Optional[float] = None,
                              max_workers: int = 4,
                              base_seed: int = 0
                              ) -> List[CompressionResult]:
    """Compress many independent frame stacks concurrently.

    .. deprecated::
        Use :class:`repro.pipeline.engine.CodecEngine` — it runs any
        registered codec, not just the trained pipeline, and supports
        serial/thread/process executor backends.  Seeding is
        unchanged, so migrated callers reproduce the same streams.
    """
    warnings.warn(
        "compress_windows_parallel is deprecated; use "
        "repro.pipeline.engine.CodecEngine (same seeding rule, any "
        "registered codec, pluggable executor backends)",
        DeprecationWarning, stacklevel=2)
    engine = CodecEngine(compressor, max_workers=max_workers,
                         base_seed=base_seed, seed_stride=SEED_STRIDE)
    batch = engine.compress(stacks, error_bound=error_bound,
                            nrmse_bound=nrmse_bound)
    return [r.detail for r in batch.results]
