"""Window-parallel compression (legacy shim).

The worker-pool logic that used to live here is now the general
:class:`~repro.pipeline.engine.CodecEngine`, which runs *any*
registered codec over batches of windows.  This module keeps the
original convenience function for existing callers: it compresses many
stacks with a trained :class:`~repro.pipeline.compressor.
LatentDiffusionCompressor` and returns the native
:class:`~repro.pipeline.compressor.CompressionResult` objects, with
the historical deterministic seeding (``base_seed + 7919 * i``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .compressor import CompressionResult, LatentDiffusionCompressor
from .engine import SEED_STRIDE, CodecEngine

__all__ = ["compress_windows_parallel"]


def compress_windows_parallel(compressor: LatentDiffusionCompressor,
                              stacks: Sequence[np.ndarray],
                              error_bound: Optional[float] = None,
                              nrmse_bound: Optional[float] = None,
                              max_workers: int = 4,
                              base_seed: int = 0
                              ) -> List[CompressionResult]:
    """Compress many independent frame stacks concurrently.

    Each stack gets a deterministic seed derived from ``base_seed`` and
    its position, so results are reproducible regardless of scheduling
    order.
    """
    engine = CodecEngine(compressor, max_workers=max_workers,
                         base_seed=base_seed, seed_stride=SEED_STRIDE)
    batch = engine.compress(stacks, error_bound=error_bound,
                            nrmse_bound=nrmse_bound)
    return [r.detail for r in batch.results]
