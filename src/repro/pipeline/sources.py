"""Bounded-memory frame sources for chunked ingestion.

``Session.compress`` historically required the full ``(T, H, W)``
stack in RAM.  A *stack source* is the out-of-core alternative: an
object exposing the stack's geometry plus ``read(a, b)`` returning
frames ``[a:b)`` as a fresh array, so the ingestion loop can pull one
bounded group of shards at a time and peak RSS stays O(chunk) instead
of O(dataset).

:class:`NpyStackSource` serves ``.npy`` files.  It parses only the
header up front, then reads each requested frame range with a plain
``seek`` + ``readinto`` into a freshly allocated buffer — deliberately
*not* ``np.load(mmap_mode="r")`` slices, because mapped pages stay
resident and count toward the process high-water mark
(``ru_maxrss``), which is exactly the metric bounded ingestion is
asserted against.

:class:`ArrayStackSource` adapts any in-RAM (or memory-mapped) array
so the chunked write path and the in-memory path share one code path
— the byte-identity tests compare them directly.
"""

from __future__ import annotations

import os
from typing import Tuple, Union

import numpy as np

__all__ = ["NpyStackSource", "ArrayStackSource", "as_stack_source"]


def _read_npy_header(fh) -> Tuple[Tuple[int, ...], bool, np.dtype, int]:
    """Shape, F-order flag, dtype and data offset of an ``.npy`` file."""
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:  # (3, 0) adds utf8 field names; layout otherwise identical
        shape, fortran, dtype = np.lib.format._read_array_header(
            fh, version)
    return shape, fortran, dtype, fh.tell()


class NpyStackSource:
    """Frame ranges of an on-disk ``.npy`` stack, read one chunk at a
    time.

    The file must hold a C-contiguous 3-dim ``(T, H, W)`` array.
    Only the header is read at construction; each :meth:`read` costs
    one seek plus one contiguous read of exactly the requested
    frames.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            shape, fortran, dtype, offset = _read_npy_header(fh)
        if len(shape) != 3:
            raise ValueError(
                f"{self.path!r} holds a {len(shape)}-dim array; "
                f"out-of-core ingestion needs a (T, H, W) stack")
        if fortran:
            raise ValueError(
                f"{self.path!r} is Fortran-ordered; out-of-core "
                f"ingestion needs C-contiguous frames")
        if dtype.hasobject:
            raise ValueError(f"{self.path!r} holds object arrays")
        self._shape = shape
        self._dtype = dtype
        self._offset = offset
        self._frame_bytes = int(dtype.itemsize * shape[1] * shape[2])

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def t(self) -> int:
        return self._shape[0]

    def read(self, a: int, b: int) -> np.ndarray:
        """Frames ``[a:b)`` as a fresh writable ``(b-a, H, W)`` array."""
        if not 0 <= a < b <= self.t:
            raise ValueError(f"frame range [{a}, {b}) outside "
                             f"[0, {self.t})")
        out = np.empty((b - a,) + self._shape[1:], dtype=self._dtype)
        view = out.reshape(-1).view(np.uint8)
        with open(self.path, "rb") as fh:
            fh.seek(self._offset + a * self._frame_bytes)
            got = fh.readinto(view)
        if got != view.nbytes:
            raise ValueError(
                f"{self.path!r} is truncated: frame range [{a}, {b}) "
                f"needs {view.nbytes} bytes, read {got}")
        return out


class ArrayStackSource:
    """Stack source over an array already in addressable memory.

    Accepts plain ndarrays and ``np.memmap``/``np.load(mmap_mode=...)``
    arrays; ``read`` copies the requested frames out, so downstream
    code always owns writable buffers.
    """

    def __init__(self, array: np.ndarray):
        if array.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {array.shape}")
        self._array = array

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(self._array.shape)

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def t(self) -> int:
        return self._array.shape[0]

    def read(self, a: int, b: int) -> np.ndarray:
        if not 0 <= a < b <= self.t:
            raise ValueError(f"frame range [{a}, {b}) outside "
                             f"[0, {self.t})")
        return np.array(self._array[a:b])


def as_stack_source(obj) -> Union[NpyStackSource, ArrayStackSource]:
    """Normalize a path / array into a stack source."""
    if isinstance(obj, (NpyStackSource, ArrayStackSource)):
        return obj
    if isinstance(obj, np.ndarray):
        return ArrayStackSource(obj)
    return NpyStackSource(obj)
