"""``repro.pipeline`` — the end-to-end latent-diffusion compressor.

* :mod:`repro.pipeline.blob` — the compressed-stream container and its
  binary (de)serialization, whose byte length is what Eq. 11 counts;
* :mod:`repro.pipeline.compressor` —
  :class:`~repro.pipeline.compressor.LatentDiffusionCompressor`, the
  public compress/decompress API;
* :mod:`repro.pipeline.training` — the two-stage training protocol of
  Sec. 3.4 plus few-step fine-tuning and corrector fitting;
* :mod:`repro.pipeline.parallel` — window-parallel compression over a
  worker pool for multi-variable archives;
* :mod:`repro.pipeline.streaming` — constant-memory chunked compression
  of frame iterators into a :class:`~repro.pipeline.streaming.StreamArchive`;
* :mod:`repro.pipeline.multivar` — multi-variable (V, T, H, W) archives
  with aggregate Eq. 11 accounting.
"""

from .blob import CompressedBlob, WindowStreams
from .compressor import CompressionResult, LatentDiffusionCompressor
from .multivar import (MultiVarArchive, MultiVariableCompressor,
                       MultiVarResult)
from .parallel import compress_windows_parallel
from .streaming import ChunkResult, StreamArchive, StreamingCompressor
from .training import TrainingConfig, TwoStageTrainer, train_compressor

__all__ = [
    "CompressedBlob", "WindowStreams", "LatentDiffusionCompressor",
    "CompressionResult", "TwoStageTrainer", "TrainingConfig",
    "train_compressor", "compress_windows_parallel",
    "StreamingCompressor", "StreamArchive", "ChunkResult",
    "MultiVariableCompressor", "MultiVarArchive", "MultiVarResult",
]
