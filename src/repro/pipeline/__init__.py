"""``repro.pipeline`` — the end-to-end latent-diffusion compressor.

* :mod:`repro.pipeline.blob` — the compressed-stream container and its
  binary (de)serialization, whose byte length is what Eq. 11 counts;
* :mod:`repro.pipeline.compressor` —
  :class:`~repro.pipeline.compressor.LatentDiffusionCompressor`, the
  public compress/decompress API;
* :mod:`repro.pipeline.training` — the two-stage training protocol of
  Sec. 3.4 plus few-step fine-tuning and corrector fitting;
* :mod:`repro.pipeline.artifacts` — the codec-agnostic artifact layer:
  content-addressed persistence of *any* trained codec
  (:class:`~repro.pipeline.artifacts.ArtifactStore`), with provenance
  manifests and spec-portability for process-pool sweeps;
* :mod:`repro.pipeline.bundle` — single-file persistence of a trained
  latent-diffusion compressor (a thin adapter over the artifact
  layer; legacy pre-manifest bundles still load);
* :mod:`repro.pipeline.engine` — the batched parallel execution engine
  that runs any registered codec over windows/variables with
  deterministic seeding and per-window accounting;
* :mod:`repro.pipeline.executors` — the pluggable execution backends
  (serial / thread / process) the engine delegates to;
* :mod:`repro.pipeline.plan` — the deterministic shard planner turning
  ``dataset x variables x window`` grids into picklable
  :class:`~repro.pipeline.plan.ShardTask` lists, plus the shard
  archive container;
* :mod:`repro.pipeline.streaming` — constant-memory chunked compression
  of frame iterators into a :class:`~repro.pipeline.streaming.StreamArchive`;
* :mod:`repro.pipeline.multivar` — multi-variable (V, T, H, W) archives
  with aggregate Eq. 11 accounting;
* :mod:`repro.pipeline.container` — the seekable footer index shared by
  the multi-part containers (member byte extents + CRC-32 checksums,
  byte sources, the counting reader used to assert partial-decode I/O);
* :mod:`repro.pipeline.sources` — bounded-memory stack sources
  (``.npy`` / array adapters) feeding chunked out-of-core ingestion.
"""

from .artifacts import (ArtifactManifest, ArtifactStore, is_artifact,
                        load_artifact, read_manifest, save_artifact)
from .blob import CompressedBlob, WindowStreams
from .bundle import load_bundle, save_bundle
from .compressor import CompressionResult, LatentDiffusionCompressor
from .container import (ArchiveIndexError, BufferSource, CountingReader,
                        FileObjSource, FileSource, MemberIndex,
                        as_source, read_index, verify_member)
from .engine import BatchResult, CodecEngine, WindowReport
from .executors import (Executor, ProcessExecutor, SerialExecutor,
                        ThreadExecutor, get_executor, list_executors)
from .multivar import (MultiVarArchive, MultiVariableCompressor,
                       MultiVarResult, read_multivar_index)
from .plan import (ShardEntry, ShardPlan, ShardTask, assemble_shards,
                   assemble_window, is_shard_archive,
                   pack_shard_archive, plan_shards, read_shard_index,
                   time_slices, unpack_shard_archive)
from .sources import ArrayStackSource, NpyStackSource, as_stack_source
from .streaming import ChunkResult, StreamArchive, StreamingCompressor
from .training import TrainingConfig, TwoStageTrainer, train_compressor

__all__ = [
    "CompressedBlob", "WindowStreams", "LatentDiffusionCompressor",
    "CompressionResult", "TwoStageTrainer", "TrainingConfig",
    "train_compressor", "save_bundle", "load_bundle",
    "CodecEngine", "BatchResult", "WindowReport",
    "Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "get_executor", "list_executors",
    "ArtifactStore", "ArtifactManifest", "save_artifact",
    "load_artifact", "read_manifest", "is_artifact",
    "ShardTask", "ShardPlan", "ShardEntry", "plan_shards",
    "time_slices", "pack_shard_archive", "unpack_shard_archive",
    "is_shard_archive", "assemble_shards", "assemble_window",
    "read_shard_index", "read_multivar_index",
    "ArchiveIndexError", "MemberIndex", "BufferSource", "FileSource",
    "FileObjSource", "CountingReader", "as_source", "read_index",
    "verify_member",
    "NpyStackSource", "ArrayStackSource", "as_stack_source",
    "StreamingCompressor", "StreamArchive", "ChunkResult",
    "MultiVariableCompressor", "MultiVarArchive", "MultiVarResult",
]
