"""Task records for the shared runtime.

A :class:`Task` is a picklable unit of work: a module-level callable
plus one payload argument, a deterministic ``task_id`` (the journal
key), and an optional per-task retry override.  The runtime reports
progress as :class:`TaskEvent`s and returns :class:`TaskOutcome`s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Task", "TaskEvent", "TaskOutcome", "run_task"]

#: lifecycle event kinds emitted by the runtime, in order of occurrence
EVENT_KINDS = ("submitted", "completed", "retrying", "failed")


@dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(payload)`` under a stable identity.

    ``fn`` must be picklable (module-level) for the process mode.
    ``task_id`` is the durable identity — the journal keys on it, so it
    must be deterministic across runs for resumption to work.  ``seed``
    is carried for provenance (journal replay cross-checks it);
    ``max_retries=None`` defers to the runtime default.
    """

    task_id: str
    fn: Callable[[Any], Any]
    payload: Any = None
    index: int = 0
    seed: Optional[int] = None
    max_retries: Optional[int] = None


@dataclass(frozen=True)
class TaskEvent:
    """A lifecycle notification: submitted/completed/retrying/failed."""

    kind: str
    task_id: str
    index: int
    attempt: int = 0
    seconds: float = 0.0
    error: Optional[str] = None


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one task: its value plus timing/attempt facts."""

    task_id: str
    index: int
    value: Any
    seconds: float = 0.0
    attempts: int = 1


def run_task(fn: Callable[[Any], Any], payload: Any) -> Tuple[Any, float]:
    """Execute ``fn(payload)``, returning ``(value, seconds)``.

    Module-level so process pools can pickle it; the timing is taken
    inside the worker so it reflects compute, not queue latency.
    """
    start = time.perf_counter()
    value = fn(payload)
    return value, time.perf_counter() - start
