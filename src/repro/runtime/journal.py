"""SweepJournal — crash-safe, append-only record of completed tasks.

The journal is a JSONL file: one header line pinning a fingerprint of
the sweep's canonical facts, then one line per completed task mapping
``task_id`` to the SHA-256 of its result payload.  Payload bytes are
staged content-addressed next to the journal
(``<journal>.objects/<sha256>.bin``) with an idempotent
write-temp-then-rename put, and each object is fsynced *before* its
journal line — so any line that survives a crash points at durable,
verifiable bytes.

Replay is defensive everywhere: corrupted or truncated lines are
skipped and counted (never raised), duplicate task lines are
last-wins, and :meth:`payload` re-hashes the object file, returning
``None`` on any mismatch so the caller simply recomputes that shard.
The only hard error is a *fingerprint* mismatch — resuming a sweep
with different parameters silently corrupting an archive is exactly
the failure mode the journal exists to prevent.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["JournalEntry", "JournalError", "SweepJournal",
           "canonical_json", "facts_fingerprint"]

FORMAT = "repro-sweep-journal"
VERSION = 1


class JournalError(ValueError):
    """The journal cannot be used for this sweep (fingerprint clash)."""


def canonical_json(obj: Any) -> str:
    """Deterministic compact JSON (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def facts_fingerprint(facts: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a sweep's resolved facts."""
    return hashlib.sha256(canonical_json(facts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One completed task: payload digest/size plus provenance meta."""

    task_id: str
    sha256: str
    nbytes: int
    meta: Dict[str, Any] = field(default_factory=dict)


class SweepJournal:
    """Append-only JSONL journal with content-addressed payloads.

    Opening an existing journal replays it (tolerating damage);
    opening a fresh path writes the header.  ``fingerprint`` pins the
    sweep's identity: a non-empty journal whose header disagrees
    raises :class:`JournalError`.
    """

    def __init__(self, path: os.PathLike, fingerprint: Optional[str] = None):
        self.path = Path(path)
        self.objects_dir = Path(str(self.path) + ".objects")
        self.fingerprint = fingerprint
        self.skipped_lines = 0
        self._entries: Dict[str, JournalEntry] = {}
        self._fh = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        header_found = False
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            header_found = self._load()
            # a crash can leave a half-written final line with no
            # newline; terminate it so the next append starts clean
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._fh = open(self.path, "a", encoding="utf-8")
        if needs_newline:
            self._fh.write("\n")
        if not header_found:
            self._append({"kind": "sweep", "format": FORMAT,
                          "version": VERSION,
                          "fingerprint": self.fingerprint})

    # -- replay ---------------------------------------------------------
    def _load(self) -> bool:
        header_found = False
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except (ValueError, TypeError):
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped_lines += 1
                    continue
                kind = record.get("kind")
                if kind == "sweep":
                    header_found = True
                    theirs = record.get("fingerprint")
                    if (self.fingerprint is not None and theirs is not None
                            and theirs != self.fingerprint):
                        raise JournalError(
                            f"journal {self.path} was written by a sweep "
                            f"with different parameters (fingerprint "
                            f"{theirs[:12]}.. != {self.fingerprint[:12]}..); "
                            "use a fresh journal path")
                elif kind == "task":
                    try:
                        entry = JournalEntry(
                            task_id=str(record["task_id"]),
                            sha256=str(record["sha256"]),
                            nbytes=int(record["bytes"]),
                            meta=dict(record.get("meta") or {}))
                    except (KeyError, TypeError, ValueError):
                        self.skipped_lines += 1
                        continue
                    self._entries[entry.task_id] = entry  # last wins
                else:
                    self.skipped_lines += 1
        return header_found

    # -- writing --------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / f"{digest}.bin"

    def _put_object(self, digest: str, data: bytes) -> None:
        path = self._object_path(digest)
        if path.exists() and path.stat().st_size == len(data):
            return  # idempotent: content-addressed, already durable
        fd, tmp = tempfile.mkstemp(dir=str(self.objects_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def record(self, task_id: str, payload: bytes,
               meta: Optional[Dict[str, Any]] = None) -> JournalEntry:
        """Durably record ``task_id -> payload``; idempotent."""
        data = bytes(payload)
        digest = hashlib.sha256(data).hexdigest()
        self._put_object(digest, data)  # object durable before its line
        entry = JournalEntry(task_id=task_id, sha256=digest,
                             nbytes=len(data), meta=dict(meta or {}))
        self._append({"kind": "task", "task_id": task_id,
                      "sha256": digest, "bytes": len(data),
                      "meta": entry.meta})
        self._entries[task_id] = entry
        return entry

    # -- replaying results ----------------------------------------------
    def completed(self) -> Dict[str, JournalEntry]:
        """Snapshot of replayable entries, keyed by task id."""
        return dict(self._entries)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def payload(self, entry: JournalEntry) -> Optional[bytes]:
        """Verified payload bytes for ``entry``, or ``None`` if damaged."""
        path = self._object_path(entry.sha256)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if len(data) != entry.nbytes:
            return None
        if hashlib.sha256(data).hexdigest() != entry.sha256:
            return None
        return data

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except Exception:
                pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SweepJournal path={str(self.path)!r} "
                f"entries={len(self._entries)} "
                f"skipped={self.skipped_lines}>")
