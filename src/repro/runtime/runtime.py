"""TaskRuntime — the one dispatcher under executors, engine, and service.

Two operating styles share one object:

* **batch** — :meth:`TaskRuntime.run` takes a list of :class:`Task`
  records, dispatches them on the configured backend
  (serial/thread/process), retries failures with exponential backoff,
  emits :class:`TaskEvent`s, and returns ordered
  :class:`TaskOutcome`s.  :meth:`map` is the thin ordered-map sugar
  the pipeline executors expose.
* **pump** — :meth:`start_workers` spawns daemon threads that drain a
  queue-like source (anything with ``get(timeout) -> item|None`` and a
  ``closed`` property, i.e. the service's ``JobQueue``) into a handler,
  tracking in-flight counts for health/metrics.

Worker pools are warm: created lazily on first use, grown (by
recreation) when a batch wants more workers than the current pool has,
and torn down by :meth:`close` — which is idempotent, exception-safe,
and non-terminal (a later ``run`` simply builds a fresh pool, matching
the historical executor contract).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import (FIRST_COMPLETED, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .task import Task, TaskEvent, TaskOutcome, run_task

__all__ = ["TaskRuntime", "default_workers", "MODES"]

MODES = ("serial", "thread", "process")

EventFn = Callable[[TaskEvent], None]
ResultFn = Callable[[TaskOutcome], None]


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    return os.cpu_count() or 4


def _resolve_mp_context(name: Optional[str]) -> str:
    if name is not None:
        return name
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else \
        multiprocessing.get_start_method()


class TaskRuntime:
    """Event-driven task dispatcher with serial/thread/process modes."""

    def __init__(self, mode: str = "thread",
                 max_workers: Optional[int] = None,
                 retries: int = 0,
                 backoff: float = 0.05,
                 backoff_limit: float = 2.0,
                 mp_context: Optional[str] = None,
                 name: str = "repro-runtime",
                 on_event: Optional[EventFn] = None,
                 before_task: Optional[Callable[[Task], None]] = None):
        if mode not in MODES:
            raise ValueError(
                f"unknown runtime mode {mode!r}; expected one of "
                + ", ".join(MODES))
        if max_workers is None:
            max_workers = default_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.mode = mode
        self.max_workers = max_workers
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_limit = float(backoff_limit)
        self.mp_context = _resolve_mp_context(mp_context)
        self.name = name
        self.on_event = on_event
        #: parent-side hook called before each task is dispatched; a
        #: raising hook aborts the batch — the fault-injection seam the
        #: crash-resume tests use.
        self.before_task = before_task
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        # pump state
        self._pump_threads: List[threading.Thread] = []
        self._pump_stop = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- events ---------------------------------------------------------
    def _emit(self, extra: Optional[EventFn], event: TaskEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)
        if extra is not None:
            extra(event)

    # -- pools ----------------------------------------------------------
    def _get_pool(self, workers: int):
        if self.mode == "thread":
            if self._thread_pool is None or self._pool_workers < workers:
                if self._thread_pool is not None:
                    self._thread_pool.shutdown(wait=True)
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"{self.name}-task")
                self._pool_workers = workers
            return self._thread_pool
        if self._process_pool is None or self._pool_workers < workers:
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=True)
            ctx = multiprocessing.get_context(self.mp_context)
            self._process_pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx)
            self._pool_workers = workers
        return self._process_pool

    # -- batch dispatch -------------------------------------------------
    def run(self, tasks: Sequence[Task],
            on_result: Optional[ResultFn] = None,
            on_event: Optional[EventFn] = None) -> List[TaskOutcome]:
        """Run ``tasks``, returning outcomes in task order.

        ``on_result`` fires once per task, in completion order,
        *before* the task's ``completed`` event — so a journal write
        hooked on ``on_result`` is durable by the time any
        ``on_event`` observer (including a fault injector) sees the
        completion.  A task that exhausts its retries raises its last
        exception after a ``failed`` event; remaining futures are
        cancelled best-effort.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.max_workers, len(tasks))
        if self.mode == "process":
            workers = min(workers, default_workers())
        if self.mode == "serial" or workers <= 1:
            return self._run_inline(tasks, on_result, on_event)
        return self._run_pool(tasks, workers, on_result, on_event)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Ordered map of ``fn`` over ``items`` (executor-compat sugar)."""
        tasks = [Task(task_id=str(i), fn=fn, payload=item, index=i)
                 for i, item in enumerate(items)]
        return [outcome.value for outcome in self.run(tasks)]

    def _task_retries(self, task: Task) -> int:
        return self.retries if task.max_retries is None else task.max_retries

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.backoff * (2 ** attempt), self.backoff_limit)
        if delay > 0:
            time.sleep(delay)

    def _run_inline(self, tasks: List[Task],
                    on_result: Optional[ResultFn],
                    on_event: Optional[EventFn]) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for task in tasks:
            if self.before_task is not None:
                self.before_task(task)
            self._emit(on_event, TaskEvent(
                "submitted", task.task_id, task.index))
            attempt = 0
            while True:
                try:
                    value, seconds = run_task(task.fn, task.payload)
                    break
                except Exception as exc:
                    if attempt < self._task_retries(task):
                        self._emit(on_event, TaskEvent(
                            "retrying", task.task_id, task.index,
                            attempt=attempt, error=str(exc)))
                        self._sleep_backoff(attempt)
                        attempt += 1
                        continue
                    self._emit(on_event, TaskEvent(
                        "failed", task.task_id, task.index,
                        attempt=attempt, error=str(exc)))
                    raise
            outcome = TaskOutcome(task.task_id, task.index, value,
                                  seconds=seconds, attempts=attempt + 1)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
            self._emit(on_event, TaskEvent(
                "completed", task.task_id, task.index,
                attempt=attempt, seconds=seconds))
        return outcomes

    def _run_pool(self, tasks: List[Task], workers: int,
                  on_result: Optional[ResultFn],
                  on_event: Optional[EventFn]) -> List[TaskOutcome]:
        pool = self._get_pool(workers)
        results: Dict[int, TaskOutcome] = {}
        pending: Dict[Future, int] = {}
        attempts = [0] * len(tasks)

        def submit(i: int) -> None:
            task = tasks[i]
            if self.before_task is not None:
                self.before_task(task)
            fut = pool.submit(run_task, task.fn, task.payload)
            pending[fut] = i
            self._emit(on_event, TaskEvent(
                "submitted", task.task_id, task.index,
                attempt=attempts[i]))

        try:
            for i in range(len(tasks)):
                submit(i)
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for fut in done:
                    i = pending.pop(fut)
                    task = tasks[i]
                    try:
                        value, seconds = fut.result()
                    except Exception as exc:
                        if attempts[i] < self._task_retries(task):
                            self._emit(on_event, TaskEvent(
                                "retrying", task.task_id, task.index,
                                attempt=attempts[i], error=str(exc)))
                            self._sleep_backoff(attempts[i])
                            attempts[i] += 1
                            submit(i)
                            continue
                        self._emit(on_event, TaskEvent(
                            "failed", task.task_id, task.index,
                            attempt=attempts[i], error=str(exc)))
                        raise
                    outcome = TaskOutcome(
                        task.task_id, task.index, value,
                        seconds=seconds, attempts=attempts[i] + 1)
                    results[i] = outcome
                    if on_result is not None:
                        on_result(outcome)
                    self._emit(on_event, TaskEvent(
                        "completed", task.task_id, task.index,
                        attempt=attempts[i], seconds=seconds))
        except BaseException:
            for fut in pending:
                fut.cancel()
            raise
        return [results[i] for i in range(len(tasks))]

    # -- pump mode (service workers) ------------------------------------
    def start_workers(self, source: Any,
                      handler: Callable[[Any], None]) -> None:
        """Spawn ``max_workers`` daemon threads draining ``source``.

        ``source`` needs ``get(timeout) -> item|None`` and (optionally)
        a ``closed`` property: ``None`` from a closed source ends the
        worker, ``None`` from a live one is a poll timeout.  Handler
        exceptions are swallowed — workers must never die; the handler
        owns its own error recording.  Idempotent while running.
        """
        if self._pump_threads and any(t.is_alive() for t in self._pump_threads):
            return
        self._pump_stop = threading.Event()
        self._pump_threads = []
        for i in range(self.max_workers):
            thread = threading.Thread(
                target=self._pump, args=(source, handler),
                name=f"{self.name}-worker-{i}", daemon=True)
            thread.start()
            self._pump_threads.append(thread)

    def _pump(self, source: Any, handler: Callable[[Any], None]) -> None:
        stop = self._pump_stop
        while not stop.is_set():
            item = source.get(timeout=0.25)
            if item is None:
                if getattr(source, "closed", False):
                    return
                continue
            with self._inflight_lock:
                self._inflight += 1
            try:
                handler(item)
            except Exception:
                pass  # workers must never die; handler owns its errors
            finally:
                with self._inflight_lock:
                    self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Items currently inside a pump handler."""
        return self._inflight

    @property
    def workers_alive(self) -> int:
        return sum(t.is_alive() for t in self._pump_threads)

    @property
    def started(self) -> bool:
        """Whether pump workers were ever started."""
        return bool(self._pump_threads)

    def stop_workers(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Signal pump threads to exit and (optionally) join them."""
        self._pump_stop.set()
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._pump_threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release pools and pump threads; idempotent, exception-safe.

        Not terminal: a later :meth:`run` lazily rebuilds its pool,
        preserving the historical map-after-close executor behavior.
        """
        try:
            self.stop_workers(wait=True, timeout=1.0)
        except Exception:
            pass
        pool, self._thread_pool = self._thread_pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:
                pass
        pool, self._process_pool = self._process_pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:
                pass
        self._pool_workers = 0

    def __enter__(self) -> "TaskRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TaskRuntime mode={self.mode!r} "
                f"max_workers={self.max_workers} retries={self.retries}>")
