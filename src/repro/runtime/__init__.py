"""repro.runtime — one event-driven task substrate under everything.

The pipeline's executor strategies, the engine's window batching, and
the service's worker threads used to be three unrelated dispatch
layers.  They now share this package:

* :mod:`repro.runtime.task` — immutable :class:`Task` records with
  deterministic ids/seeds, :class:`TaskEvent` lifecycle events, and
  :class:`TaskOutcome` results.
* :mod:`repro.runtime.runtime` — :class:`TaskRuntime`, the dispatcher:
  serial/thread/process modes behind one ``run()``/``map()`` surface,
  per-task retry with exponential backoff, completion events, and a
  queue-pump mode (``start_workers``) for long-lived services.
* :mod:`repro.runtime.journal` — :class:`SweepJournal`, a crash-safe
  append-only JSONL journal of ``task_id -> result digest`` with
  content-addressed payload staging and idempotent replay, the
  substrate for ``Session.sweep(..., journal=...)`` / ``repro sweep
  --resume``.
"""

from .task import Task, TaskEvent, TaskOutcome
from .runtime import TaskRuntime, default_workers
from .journal import JournalEntry, JournalError, SweepJournal, facts_fingerprint

__all__ = [
    "Task",
    "TaskEvent",
    "TaskOutcome",
    "TaskRuntime",
    "default_workers",
    "JournalEntry",
    "JournalError",
    "SweepJournal",
    "facts_fingerprint",
]
