"""Radial energy spectra and spectral-fidelity metrics.

The radial (isotropic) energy spectrum of a 2-D field ``u`` is the
power ``|û(k)|^2`` binned by wavenumber magnitude.  Normalization is
chosen so Parseval holds exactly::

    sum_k E(k) == mean(u^2)

which makes the spectrum a partition of the field's energy across
scales — the property the tests pin down.  For frame stacks the
spectrum is averaged over frames.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["radial_energy_spectrum", "spectral_relative_error",
           "spectrum_slope"]


def _radial_bins(h: int, w: int) -> Tuple[np.ndarray, int]:
    """Integer radial-wavenumber label per FFT cell, and bin count."""
    ky = np.fft.fftfreq(h) * h
    kx = np.fft.fftfreq(w) * w
    kmag = np.sqrt(ky[:, None] ** 2 + kx[None, :] ** 2)
    labels = np.rint(kmag).astype(np.int64)
    return labels, int(labels.max()) + 1


def radial_energy_spectrum(field: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic energy spectrum of a ``(H, W)`` field or ``(T, H, W)``
    stack (frame-averaged).

    Returns ``(k, E)`` where ``k`` are integer radial wavenumbers and
    ``sum(E) == mean(field**2)`` (Parseval partition; for stacks, the
    frame-averaged mean square).
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 2:
        field = field[None]
    if field.ndim != 3:
        raise ValueError(f"expected (H, W) or (T, H, W), got {field.shape}")
    t, h, w = field.shape
    labels, nbins = _radial_bins(h, w)
    # power per FFT cell, normalized so the total equals mean(u^2)
    power = np.abs(np.fft.fft2(field)) ** 2 / (h * w) ** 2
    spectrum = np.zeros(nbins)
    flat_labels = labels.ravel()
    for frame_power in power:
        spectrum += np.bincount(flat_labels, weights=frame_power.ravel(),
                                minlength=nbins)
    spectrum /= t
    return np.arange(nbins), spectrum


def spectral_relative_error(original: np.ndarray, reconstruction: np.ndarray,
                            k_max: Optional[int] = None) -> np.ndarray:
    """Per-band relative spectrum error ``|E_rec - E_orig| / E_orig``.

    Bands whose original energy is below ``1e-20`` of the dominant band
    (FFT roundoff, not physics) are reported as 0 when the
    reconstruction is equally empty there, else as ``inf`` — spurious
    energy injected into an empty band is a real fidelity failure, not
    a division artifact.
    """
    original = np.asarray(original, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if original.shape != reconstruction.shape:
        raise ValueError(
            f"shape mismatch {original.shape} vs {reconstruction.shape}")
    _, e0 = radial_energy_spectrum(original)
    _, e1 = radial_energy_spectrum(reconstruction)
    if k_max is not None:
        e0, e1 = e0[:k_max + 1], e1[:k_max + 1]
    tiny = 1e-20 * max(float(e0.max()), 1e-300)
    out = np.empty_like(e0)
    dead = e0 <= tiny
    out[~dead] = np.abs(e1[~dead] - e0[~dead]) / e0[~dead]
    out[dead] = np.where(e1[dead] <= tiny, 0.0, np.inf)
    return out


def spectrum_slope(k: np.ndarray, e: np.ndarray,
                   k_range: Tuple[int, int]) -> float:
    """Log-log least-squares slope of ``E(k)`` over ``k_range``.

    For Kolmogorov turbulence the inertial range shows ``slope ≈ -5/3``;
    the JHTDB synthetic generator is asserted against this.
    """
    k = np.asarray(k, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    lo, hi = k_range
    if lo < 1:
        raise ValueError("k_range must start at >= 1 (log scale)")
    sel = (k >= lo) & (k <= hi) & (e > 0)
    if sel.sum() < 2:
        raise ValueError(f"k_range {k_range} selects fewer than 2 bands")
    slope, _ = np.polyfit(np.log(k[sel]), np.log(e[sel]), 1)
    return float(slope)
