"""``repro.analysis`` — physics-aware fidelity diagnostics.

Beyond pointwise metrics (NRMSE, Eq. 12), scientific users judge a
compressor by whether *derived statistics* survive: for turbulence the
canonical check is the radial kinetic-energy spectrum (the JHTDB
synthetic generator is built around a ``k^(-5/3)`` inertial range).
This package provides the spectrum machinery and spectral-fidelity
metrics used by the JHTDB example and the analysis benches.
"""

from .spectrum import (radial_energy_spectrum, spectral_relative_error,
                       spectrum_slope)

__all__ = ["radial_energy_spectrum", "spectral_relative_error",
           "spectrum_slope"]
