"""``repro.nn`` — NumPy neural-network substrate.

A from-scratch replacement for the PyTorch stack the paper was
implemented on: reverse-mode autodiff (:mod:`repro.nn.tensor`), an op
library (:mod:`repro.nn.ops`, :mod:`repro.nn.conv`,
:mod:`repro.nn.attention`), layers (:mod:`repro.nn.modules`), optimizers
(:mod:`repro.nn.optim`) and checkpointing
(:mod:`repro.nn.serialization`).
"""

from . import functional  # noqa: F401  (wires op dunders onto Tensor)
from . import fastpath, init, optim, profile, serialization  # noqa: F401
from .gdn import GDN
from .modules import (Conv2d, ConvTranspose2d, GELU, GroupNorm, Identity,
                      LayerNorm, LeakyReLU, Linear, Module, ModuleList,
                      Parameter, ReLU, Sequential, Sigmoid, SiLU, Tanh)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, unbroadcast

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "unbroadcast",
    "Parameter", "Module", "Sequential", "ModuleList", "Identity",
    "Linear", "Conv2d", "ConvTranspose2d", "GroupNorm", "LayerNorm",
    "ReLU", "LeakyReLU", "SiLU", "GELU", "Tanh", "Sigmoid", "GDN",
    "functional", "fastpath", "profile", "init", "optim", "serialization",
]
