"""Allocation-lean raw-ndarray kernels for the inference fast path.

Under ``no_grad`` the autodiff layer still pays for every op: a
``Tensor`` wrapper, a backward closure (built then discarded), and an
``as_tensor`` coercion per operand.  For the learned codecs those costs
dominate the profile — a single UNet forward records ~13k ops on tiny
latent grids.  The kernels here compute the *same* forward math directly
on ``np.ndarray``s.

Bitwise contract: every function mirrors, numpy-call for numpy-call and
in the same order, the op chain its grad-mode counterpart records in
``ops.py`` / ``modules.py``.  ``tests/nn/test_fastpath.py`` asserts
grad-mode and fast-path outputs are bitwise equal across the module zoo;
keep that invariant when editing either side.

The module also owns the fast-path switch: ``disabled()`` routes every
module back through the autodiff op chains (and the conv dispatch back
to the legacy tap loop), which the codec bench uses to measure an
honest in-run baseline.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from scipy import special as _sp_special

from . import conv as _conv
from .tensor import is_grad_enabled

__all__ = [
    "is_enabled", "disabled", "active",
    "silu", "relu", "leaky_relu", "gelu", "tanh", "sigmoid", "softplus",
    "linear", "conv2d", "conv_transpose2d", "group_norm", "layer_norm",
    "sdpa", "temporal_tokens", "untokenize_temporal",
    "spatial_tokens", "untokenize_spatial",
    "avg_pool2d", "upsample_nearest2d",
]


# ----------------------------------------------------------------------
# Switch
# ----------------------------------------------------------------------
_ENABLED: List[bool] = [True]


def is_enabled() -> bool:
    """Whether fused kernels and the im2col conv dispatch are allowed."""
    return _ENABLED[-1]


class disabled:
    """Context manager forcing the legacy op-chain / tap-loop paths."""

    def __enter__(self) -> "disabled":
        _ENABLED.append(False)
        return self

    def __exit__(self, *exc) -> None:
        _ENABLED.pop()


def active() -> bool:
    """True when a module should take its fused no-grad branch."""
    return _ENABLED[-1] and not is_grad_enabled()


# ----------------------------------------------------------------------
# Elementwise activations (mirror ops.py forwards)
# ----------------------------------------------------------------------
def silu(x: np.ndarray) -> np.ndarray:
    s = _sp_special.expit(x)
    return x * s


def relu(x: np.ndarray) -> np.ndarray:
    return x * (x > 0)


def leaky_relu(x: np.ndarray, slope: float = 0.01) -> np.ndarray:
    return x * np.where(x > 0, 1.0, slope)


def gelu(x: np.ndarray) -> np.ndarray:
    cdf = 0.5 * (1.0 + _sp_special.erf(x / math.sqrt(2.0)))
    return x * cdf


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return _sp_special.expit(x)


def softplus(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


# ----------------------------------------------------------------------
# Affine / conv layers
# ----------------------------------------------------------------------
def linear(x: np.ndarray, w: np.ndarray,
           b: Optional[np.ndarray] = None) -> np.ndarray:
    y = x @ w.transpose((1, 0))
    if b is not None:
        y = y + b
    return y


def conv2d(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
           stride: int, padding: int,
           act: Optional[Callable[[np.ndarray], np.ndarray]] = None
           ) -> np.ndarray:
    """Fused conv + bias + optional activation, no intermediate Tensors."""
    y = _conv._conv2d_forward(x, w, stride, padding)
    if b is not None:
        y = y + b.reshape(1, -1, 1, 1)
    if act is not None:
        y = act(y)
    return y


def conv_transpose2d(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
                     stride: int, padding: int, output_padding: int,
                     act: Optional[Callable[[np.ndarray], np.ndarray]] = None
                     ) -> np.ndarray:
    B, Cin, H, W = x.shape
    Cin2, Cout, kh, kw = w.shape
    assert Cin == Cin2, f"channel mismatch: {Cin} vs {Cin2}"
    Ho, Wo = _conv.conv_transpose2d_out_shape(H, W, kh, kw, stride, padding,
                                              output_padding)
    y = _conv._conv2d_grad_input(x, w, stride, padding, (B, Cout, Ho, Wo))
    if b is not None:
        y = y + b.reshape(1, -1, 1, 1)
    if act is not None:
        y = act(y)
    return y


def avg_pool2d(x: np.ndarray, kernel: int) -> np.ndarray:
    B, C, H, W = x.shape
    return x.reshape(B, C, H // kernel, kernel, W // kernel,
                     kernel).mean(axis=(3, 5))


def upsample_nearest2d(x: np.ndarray, factor: int) -> np.ndarray:
    return np.repeat(np.repeat(x, factor, axis=2), factor, axis=3)


# ----------------------------------------------------------------------
# Normalization layers
# ----------------------------------------------------------------------
def group_norm(x: np.ndarray, num_groups: int, weight: np.ndarray,
               bias: np.ndarray, eps: float) -> np.ndarray:
    shape = x.shape
    B, C = shape[0], shape[1]
    spatial = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    xg = x.reshape(B, num_groups, (C // num_groups) * spatial)
    mu = xg.mean(axis=2, keepdims=True)
    diff = xg - mu
    v = (diff * diff).mean(axis=2, keepdims=True)
    xn = (diff / np.sqrt(v + eps)).reshape(shape)
    wshape = (1, C) + (1,) * (len(shape) - 2)
    return xn * weight.reshape(wshape) + bias.reshape(wshape)


def layer_norm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
               eps: float) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    diff = x - mu
    v = (diff * diff).mean(axis=-1, keepdims=True)
    xn = diff / np.sqrt(v + eps)
    return xn * weight + bias


# ----------------------------------------------------------------------
# Attention
# ----------------------------------------------------------------------
def sdpa(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    d = q.shape[-1]
    scores = (q @ np.swapaxes(k, -1, -2)) * (1.0 / math.sqrt(d))
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    weights = e / e.sum(axis=-1, keepdims=True)
    return weights @ v


def spatial_tokens(x5: np.ndarray) -> np.ndarray:
    """``(B, N, C, H, W)`` -> ``(B*N, H*W, C)`` in one reshape/swap."""
    B, N, C, H, W = x5.shape
    return x5.reshape(B * N, C, H * W).swapaxes(1, 2)


def untokenize_spatial(tok: np.ndarray, shape) -> np.ndarray:
    B, N, C, H, W = shape
    return tok.swapaxes(1, 2).reshape(B, N, C, H, W)


def temporal_tokens(x5: np.ndarray) -> np.ndarray:
    """``(B, N, C, H, W)`` -> ``(B*H*W, N, C)`` without per-op Tensors.

    The single ``transpose`` view plus one (copying) ``reshape``
    replaces the grad path's ``moveaxis``-style chain of intermediate
    Tensor copies.
    """
    B, N, C, H, W = x5.shape
    return x5.transpose(0, 3, 4, 1, 2).reshape(B * H * W, N, C)


def untokenize_temporal(tok: np.ndarray, shape) -> np.ndarray:
    B, N, C, H, W = shape
    return tok.reshape(B, H, W, N, C).transpose(0, 3, 4, 1, 2)
