"""Lightweight op-level profiler for the nn stack — ``repro.nn.profile``.

Answers "where does inference time go?" without external tooling: a
:class:`profile` context manager patches the graph-construction
chokepoint (:meth:`Tensor._from_op`) plus every raw conv / GDN /
attention / fast-path kernel, recording per-op call counts, cumulative
seconds and peak result bytes.  The benches consume :func:`top` to
embed hot-op tables in their JSON records::

    from repro.nn import profile
    with profile.profile() as prof:
        codec.decompress(blob)
    print(prof.table())          # or profile.report() afterwards

Semantics worth knowing:

* Timings are *cumulative*: a fused ``fastpath.conv2d`` call records
  its full duration **and** the nested ``conv2d.forward`` kernel
  records its share, so parent and child rows overlap.  The table is a
  ranking of hot paths, not a partition of wall time.
* ``Tensor._from_op`` rows (plain op names such as ``mul`` or
  ``matmul``) time only graph bookkeeping — the numpy compute happens
  before ``_from_op`` runs.  Kernel rows (``conv2d.*``, ``gdn.*``,
  ``fastpath.*``) carry real compute time.
* Profilers nest: every active profiler on the stack receives every
  event, so an outer profiler sees the totals of inner sections.

Patching is process-global and restored when the outermost ``profile``
exits; the hooks add one function call per op, which is well under 1%
of a learned-codec decode.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from . import conv as _conv
from . import fastpath as _fastpath
from . import gdn as _gdn
from .tensor import Tensor

__all__ = ["OpStat", "OpProfiler", "profile", "report", "top"]


class OpStat:
    """Running tally for one op label."""

    __slots__ = ("calls", "seconds", "peak_bytes")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.peak_bytes = 0

    def add(self, seconds: float, nbytes: int) -> None:
        self.calls += 1
        self.seconds += seconds
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OpStat(calls={self.calls}, seconds={self.seconds:.6f}, "
                f"peak_bytes={self.peak_bytes})")


class OpProfiler:
    """Per-op stats collected over one :class:`profile` section."""

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}

    def record(self, name: str, seconds: float, nbytes: int) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat()
        stat.add(seconds, nbytes)

    def sorted_items(self) -> List[tuple]:
        """(name, stat) pairs, hottest (most cumulative seconds) first."""
        return sorted(self.stats.items(),
                      key=lambda kv: (-kv[1].seconds, -kv[1].calls, kv[0]))

    def top(self, n: int = 5) -> List[dict]:
        """The ``n`` hottest ops as JSON-ready dicts."""
        return [{"op": name, "calls": s.calls,
                 "seconds": round(s.seconds, 6), "peak_bytes": s.peak_bytes}
                for name, s in self.sorted_items()[:n]]

    def table(self, limit: Optional[int] = None) -> str:
        """Human-readable table, hottest ops first."""
        rows = self.sorted_items()
        if limit is not None:
            rows = rows[:limit]
        lines = [f"{'op':<28} {'calls':>8} {'seconds':>10} {'peak MiB':>9}"]
        lines.append("-" * len(lines[0]))
        for name, s in rows:
            lines.append(f"{name:<28} {s.calls:>8d} {s.seconds:>10.4f} "
                         f"{s.peak_bytes / (1 << 20):>9.2f}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Hook plumbing
# ----------------------------------------------------------------------
_STACK: List[OpProfiler] = []       # active profilers (nesting allowed)
_LAST: Optional[OpProfiler] = None  # most recently exited, for report()
_PATCHED: List[tuple] = []          # (owner, attr, original) for restore

#: fast-path kernels instrumented while profiling
_FASTPATH_KERNELS = (
    "silu", "relu", "leaky_relu", "gelu", "tanh", "sigmoid", "softplus",
    "linear", "conv2d", "conv_transpose2d", "avg_pool2d",
    "upsample_nearest2d", "group_norm", "layer_norm", "sdpa",
    "spatial_tokens", "untokenize_spatial", "temporal_tokens",
    "untokenize_temporal",
)

#: raw conv kernels (shared by grad and no-grad modes)
_CONV_KERNELS = (
    ("_conv2d_forward", "conv2d.forward"),
    ("_conv2d_forward_taps", "conv2d.forward.taps"),
    ("_conv2d_forward_im2col", "conv2d.forward.im2col"),
    ("_conv2d_grad_input", "conv2d.grad_input"),
    ("_conv2d_grad_weight", "conv2d.grad_weight"),
)


def _nbytes(out) -> int:
    """Byte size of a kernel result (arrays inside tuples included)."""
    if isinstance(out, np.ndarray):
        return out.nbytes
    if isinstance(out, (tuple, list)):
        return sum(o.nbytes for o in out if isinstance(o, np.ndarray))
    data = getattr(out, "data", None)
    if isinstance(data, np.ndarray):
        return data.nbytes
    return 0


def _record(name: str, seconds: float, nbytes: int) -> None:
    for prof in _STACK:
        prof.record(name, seconds, nbytes)


def _patch(owner, attr: str, label: str) -> None:
    orig = getattr(owner, attr)

    def wrapped(*args, **kwargs):
        t0 = time.perf_counter()
        out = orig(*args, **kwargs)
        _record(label, time.perf_counter() - t0, _nbytes(out))
        return out

    wrapped.__wrapped__ = orig  # type: ignore[attr-defined]
    setattr(owner, attr, wrapped)
    _PATCHED.append((owner, attr, orig))


def _install() -> None:
    """Patch the op census + raw kernels (idempotent per profile stack)."""
    # graph-construction census: one row per autodiff op name
    orig_from_op = Tensor.__dict__["_from_op"].__func__

    def from_op(data, parents, backward, op):
        t0 = time.perf_counter()
        out = orig_from_op(data, parents, backward, op)
        nbytes = data.nbytes if isinstance(data, np.ndarray) else 0
        _record(op, time.perf_counter() - t0, nbytes)
        return out

    Tensor._from_op = staticmethod(from_op)  # type: ignore[assignment]
    _PATCHED.append((Tensor, "_from_op", staticmethod(orig_from_op)))

    for attr, label in _CONV_KERNELS:
        _patch(_conv, attr, label)
    _patch(_gdn, "_gdn_forward", "gdn.forward")
    for name in _FASTPATH_KERNELS:
        _patch(_fastpath, name, f"fastpath.{name}")


def _uninstall() -> None:
    while _PATCHED:
        owner, attr, orig = _PATCHED.pop()
        setattr(owner, attr, orig)


class profile:
    """Context manager collecting op stats into an :class:`OpProfiler`.

    ``with profile() as prof: ...`` — afterwards query ``prof.table()``
    / ``prof.top(n)``, or the module-level :func:`report` / :func:`top`
    which read the innermost active (or most recently exited) profiler.
    """

    def __init__(self) -> None:
        self.profiler = OpProfiler()

    def __enter__(self) -> OpProfiler:
        if not _STACK:
            _install()
        _STACK.append(self.profiler)
        return self.profiler

    def __exit__(self, *exc) -> None:
        global _LAST
        _STACK.remove(self.profiler)
        _LAST = self.profiler
        if not _STACK:
            _uninstall()


def _current() -> OpProfiler:
    if _STACK:
        return _STACK[-1]
    if _LAST is None:
        raise RuntimeError("no profile() section has run yet")
    return _LAST


def report(limit: Optional[int] = None) -> str:
    """Sorted table for the innermost active (or last) profiler."""
    return _current().table(limit)


def top(n: int = 5) -> List[dict]:
    """Hottest ``n`` ops of the innermost active (or last) profiler."""
    return _current().top(n)
