"""State-dict persistence for :class:`repro.nn.Module` models.

Checkpoints are plain ``.npz`` archives mapping parameter names to
arrays, so they stay inspectable with nothing but NumPy.
"""

from __future__ import annotations

import hashlib
import io
import os
from typing import Dict, Union

import numpy as np

from .modules import Module

__all__ = ["save_state", "load_state", "save_module", "load_module",
           "state_digest"]

PathLike = Union[str, os.PathLike]


def state_digest(state: Dict[str, np.ndarray]) -> str:
    """Deterministic content hash of a state dict.

    Hashes names, dtypes, shapes and raw (C-contiguous) bytes in sorted
    key order, so the digest is stable across processes and platforms
    of equal endianness.  Used by the artifact store to content-address
    trained-model files and to verify integrity on load.
    """
    h = hashlib.sha256()
    for name in sorted(state):
        arr = np.ascontiguousarray(state[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_state(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Write a state dict to ``path`` as a compressed ``.npz``."""
    np.savez_compressed(path, **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict written by :func:`save_state`."""
    with np.load(path) as archive:
        return {k: archive[k] for k in archive.files}


def save_module(module: Module, path: PathLike) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: PathLike, strict: bool = True) -> Module:
    """Restore a module's parameters in place and return it."""
    module.load_state_dict(load_state(path), strict=strict)
    return module


def state_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    """Serialize a state dict to bytes (for embedding in blobs)."""
    buf = io.BytesIO()
    np.savez_compressed(buf, **state)
    return buf.getvalue()


def state_from_bytes(data: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_to_bytes`."""
    with np.load(io.BytesIO(data)) as archive:
        return {k: archive[k] for k in archive.files}
