"""Parameter initializers.

All initializers are pure functions of an explicit ``numpy.random.Generator``
so that model construction is fully reproducible (a requirement for the
benchmark harness, which compares runs across keyframe strategies using
identical weights).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros", "ones", "normal",
           "fan_in_fan_out"]


def fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv weight shapes."""
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def kaiming_uniform(rng: np.random.Generator, shape: Sequence[int],
                    a: float = math.sqrt(5.0)) -> np.ndarray:
    """He-uniform init (PyTorch's default for conv/linear layers)."""
    fan_in, _ = fan_in_fan_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=tuple(shape))


def xavier_uniform(rng: np.random.Generator, shape: Sequence[int],
                   gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = fan_in_fan_out(shape)
    bound = gain * math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=tuple(shape))


def normal(rng: np.random.Generator, shape: Sequence[int],
           std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=tuple(shape))


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(tuple(shape))


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(tuple(shape))
