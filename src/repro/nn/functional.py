"""Stateless functional API (re-exports) — ``repro.nn.functional``.

Mirrors the ``torch.nn.functional`` convention so model code reads
naturally to anyone coming from the paper's PyTorch implementation.
"""

from .attention import (scaled_dot_product_attention, spatial_tokens,
                        temporal_tokens, untokenize_spatial,
                        untokenize_temporal)
from .conv import avg_pool2d, conv2d, conv_transpose2d, upsample_nearest2d
from .ops import (abs_ as abs, add, clip, concat, div, dropout, erf, exp,
                  flip, gelu, getitem, l1_loss, leaky_relu, log, log_softmax,
                  lower_bound, matmul, max_ as max, mean, min_ as min,
                  mse_loss, mul, neg, pad, relu, reshape, sigmoid, silu,
                  softmax, softplus, split, sqrt, stack, sub, sum_ as sum,
                  swapaxes, tanh, transpose, var, where)

__all__ = [
    "scaled_dot_product_attention", "spatial_tokens", "temporal_tokens",
    "untokenize_spatial", "untokenize_temporal",
    "avg_pool2d", "conv2d", "conv_transpose2d", "upsample_nearest2d",
    "abs", "add", "clip", "concat", "div", "dropout", "erf", "exp", "flip",
    "gelu", "getitem", "l1_loss", "leaky_relu", "log", "log_softmax",
    "lower_bound",
    "matmul", "max", "mean", "min", "mse_loss", "mul", "neg", "pad", "relu",
    "reshape", "sigmoid", "silu", "softmax", "softplus", "split", "sqrt",
    "stack", "sub", "sum", "swapaxes", "tanh", "transpose", "var", "where",
]
