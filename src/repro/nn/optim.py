"""Optimizers and learning-rate schedules.

The paper trains the VAE with Adam at 1e-3 decayed 0.5x every 100K
iterations, and the diffusion model at 1e-4 (Sec. 4.3).  Both patterns
are provided: :class:`Adam` plus :class:`StepLR` / :class:`CosineLR`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .modules import Parameter

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class _Optimizer:
    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------
    def state_dict(self) -> dict:
        """Resumable state: scalars plus per-parameter buffers.

        Buffers are keyed by parameter *position*, so the restoring
        optimizer must be built over the same parameter list (same
        model, same order) — the convention PyTorch uses too.
        """
        return {"lr": np.array(self.lr),
                "step_count": np.array(self.step_count)}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])

    def _load_buffers(self, state: dict, name: str,
                      buffers: List[np.ndarray]) -> None:
        for i, buf in enumerate(buffers):
            key = f"{name}{i}"
            if key not in state:
                raise KeyError(f"missing optimizer buffer {key!r}")
            if state[key].shape != buf.shape:
                raise ValueError(
                    f"buffer {key!r} shape {state[key].shape} != "
                    f"{buf.shape} (parameter list mismatch?)")
            buf[...] = state[key]


class SGD(_Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        state = super().state_dict()
        for i, v in enumerate(self._velocity):
            state[f"velocity{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_buffers(state, "velocity", self._velocity)


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            mhat = m / bc1
            vhat = v / bc2
            p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_buffers(state, "m", self._m)
        self._load_buffers(state, "v", self._v)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` steps.

    Mirrors the paper's VAE schedule: "decays by a factor of 0.5 every
    100K iterations".
    """

    def __init__(self, optimizer: _Optimizer, step_size: int,
                 gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_size = step_size
        self.gamma = gamma
        self._t = 0

    def step(self) -> float:
        self._t += 1
        factor = self.gamma ** (self._t // self.step_size)
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr

    def state_dict(self) -> dict:
        return {"t": np.array(self._t), "base_lr": np.array(self.base_lr)}

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self.base_lr = float(state["base_lr"])


class CosineLR:
    """Cosine decay from the base LR to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: _Optimizer, total_steps: int,
                 min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._t = 0

    def step(self) -> float:
        self._t = min(self._t + 1, self.total_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * self._t / self.total_steps))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
        return self.optimizer.lr

    def state_dict(self) -> dict:
        return {"t": np.array(self._t), "base_lr": np.array(self.base_lr)}

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self.base_lr = float(state["base_lr"])
