"""Scaled dot-product attention and the factorized space-time pattern.

The paper's denoising UNet (Sec. 3.2, "Denoising UNet") uses factorized
space-time attention from video diffusion models: given features
``(B, N, C, H, W)`` (``N`` frames), *temporal* attention reshapes to
``(B*H*W, N, C)`` and attends along frames, while *spatial* attention
reshapes to ``(B*N, H*W, C)`` and attends within each frame.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import fastpath, ops
from .tensor import Tensor, as_tensor

__all__ = ["scaled_dot_product_attention", "spatial_tokens", "temporal_tokens",
           "untokenize_spatial", "untokenize_temporal"]


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> Tensor:
    """softmax(q kᵀ / sqrt(d)) v over the last two axes.

    ``q, k, v`` have shape ``(..., L, D)``; output matches ``q``.
    """
    q, k, v = as_tensor(q), as_tensor(k), as_tensor(v)
    if fastpath.active():
        return Tensor(fastpath.sdpa(q.data, k.data, v.data))
    d = q.shape[-1]
    scores = ops.matmul(q, ops.swapaxes(k, -1, -2)) * (1.0 / math.sqrt(d))
    weights = ops.softmax(scores, axis=-1)
    return ops.matmul(weights, v)


def spatial_tokens(x: Tensor) -> Tensor:
    """``(B, N, C, H, W)`` -> ``(B*N, H*W, C)`` token layout.

    Matches the paper: "spatial attention is applied by reshaping to
    N x (H*W) x C and using the same attention formula within each
    frame".
    """
    B, N, C, H, W = x.shape
    x = ops.reshape(x, (B * N, C, H * W))
    return ops.swapaxes(x, 1, 2)


def untokenize_spatial(x: Tensor, shape) -> Tensor:
    """Inverse of :func:`spatial_tokens` given the original 5-D shape."""
    B, N, C, H, W = shape
    x = ops.swapaxes(x, 1, 2)
    return ops.reshape(x, (B, N, C, H, W))


def temporal_tokens(x: Tensor) -> Tensor:
    """``(B, N, C, H, W)`` -> ``(B*H*W, N, C)`` token layout.

    Matches the paper: "temporal attention is applied by reshaping the
    input to (H*W) x N x C and computing self-attention along the
    temporal dimension".
    """
    B, N, C, H, W = x.shape
    x = ops.transpose(x, (0, 3, 4, 1, 2))        # (B, H, W, N, C)
    return ops.reshape(x, (B * H * W, N, C))


def untokenize_temporal(x: Tensor, shape) -> Tensor:
    """Inverse of :func:`temporal_tokens` given the original 5-D shape."""
    B, N, C, H, W = shape
    x = ops.reshape(x, (B, H, W, N, C))
    return ops.transpose(x, (0, 3, 4, 1, 2))
