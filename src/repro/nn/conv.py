"""Differentiable 2-D convolution ops (tap-loop + im2col formulations).

Two interchangeable kernel strategies compute the same cross-correlation:

* a short loop over kernel taps — each tap a fully vectorised ``einsum``
  over the batch (memory-lean, good for large frames);
* an im2col/``as_strided`` patch matrix contracted in a single GEMM
  (fastest for the small latent grids the UNet spends its time on).

``_conv2d_forward`` picks between them with a byte-budget heuristic so
grad-mode and ``no_grad`` forwards always run the *same* kernel for a
given shape.  Einsum contraction paths are planned once per
(subscripts, shapes, dtypes) signature and memoized — ``np.einsum_path``
re-planning used to dominate the inference profile.

Shape conventions (match PyTorch):

* ``conv2d``:            x ``(B, Cin, H, W)``, w ``(Cout, Cin, kh, kw)``
* ``conv_transpose2d``:  x ``(B, Cin, H, W)``, w ``(Cin, Cout, kh, kw)``
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["conv2d", "conv_transpose2d", "avg_pool2d", "upsample_nearest2d",
           "cached_einsum"]

# Patch-matrix byte budget above which the im2col kernel would thrash
# memory; beyond it the tap loop wins.  Tests monkeypatch this to force
# either kernel.
IM2COL_MAX_BYTES = 1 << 26

_EINSUM_PATHS: Dict[tuple, list] = {}


def _pad2d(x: np.ndarray, p: int) -> np.ndarray:
    """Zero-pad the two trailing axes by ``p`` on each side.

    Equivalent to ``np.pad`` with a constant mode but without its
    per-axis Python bookkeeping, which showed up in the denoise-loop
    profile (hundreds of small pads per sampled window).
    """
    B, C, H, W = x.shape
    xp = np.zeros((B, C, H + 2 * p, W + 2 * p), dtype=x.dtype)
    xp[:, :, p:-p, p:-p] = x
    return xp


def cached_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with the contraction path memoized per signature.

    ``optimize=True`` re-runs the path optimizer on every call — for the
    small per-tap contractions here the planning costs more than the
    contraction itself.  Paths depend only on subscripts, operand shapes
    and dtypes, so they are cached on exactly that key.
    """
    key = (subscripts,) + tuple(
        (op.shape, op.dtype.str) for op in operands)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
        _EINSUM_PATHS[key] = path
    return np.einsum(subscripts, *operands, optimize=path)


# ----------------------------------------------------------------------
# Raw NumPy kernels (shared by forward and backward passes)
# ----------------------------------------------------------------------
def _im2col(xp: np.ndarray, kh: int, kw: int, stride: int,
            Ho: int, Wo: int) -> np.ndarray:
    """Patch matrix ``(Cin*kh*kw, B*Ho*Wo)`` of the padded input.

    The patch axis comes *last* so the gather that materializes the
    strided view copies contiguous ``Wo``-length runs (the ``Wo`` axis
    has the input's unit stride) instead of ``kw``-length ones — about
    2x faster for 3x3 kernels on latent-sized grids.
    """
    B, C = xp.shape[0], xp.shape[1]
    sB, sC, sH, sW = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp, shape=(C, kh, kw, B, Ho, Wo),
        strides=(sC, sH, sW, sB, sH * stride, sW * stride),
        writeable=False)
    return windows.reshape(C * kh * kw, B * Ho * Wo)


def _use_im2col(B: int, C: int, Ho: int, Wo: int, kh: int, kw: int,
                itemsize: int) -> bool:
    if kh == 1 and kw == 1:
        return False            # 1x1 taps are already a single einsum
    from .fastpath import is_enabled
    if not is_enabled():
        return False
    return B * Ho * Wo * C * kh * kw * itemsize <= IM2COL_MAX_BYTES


def _conv2d_forward_taps(x: np.ndarray, w: np.ndarray, stride: int,
                         Ho: int, Wo: int) -> np.ndarray:
    """Tap-loop kernel over the already-padded input."""
    B = x.shape[0]
    Cout, _, kh, kw = w.shape
    y = np.zeros((B, Cout, Ho, Wo), dtype=x.dtype)
    for k in range(kh):
        for l in range(kw):
            xs = x[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride]
            y += cached_einsum("bchw,oc->bohw", xs, w[:, :, k, l])
    return y


def _conv2d_forward_im2col(x: np.ndarray, w: np.ndarray, stride: int,
                           Ho: int, Wo: int) -> np.ndarray:
    """Single-GEMM kernel over the already-padded input."""
    B = x.shape[0]
    Cout, Cin, kh, kw = w.shape
    cols = _im2col(x, kh, kw, stride, Ho, Wo)
    y = w.reshape(Cout, Cin * kh * kw) @ cols
    return np.ascontiguousarray(
        y.reshape(Cout, B, Ho, Wo).transpose(1, 0, 2, 3))


def _conv2d_forward(x: np.ndarray, w: np.ndarray, stride: int,
                    padding: int) -> np.ndarray:
    """y[b,o,i,j] = sum_{c,k,l} x[b,c,i*s+k-p, j*s+l-p] * w[o,c,k,l]."""
    B, Cin, H, W = x.shape
    Cout, Cin2, kh, kw = w.shape
    assert Cin == Cin2, f"channel mismatch: {Cin} vs {Cin2}"
    if padding:
        x = _pad2d(x, padding)
    Hp, Wp = x.shape[2], x.shape[3]
    Ho = (Hp - kh) // stride + 1
    Wo = (Wp - kw) // stride + 1
    if _use_im2col(B, Cin, Ho, Wo, kh, kw, x.itemsize):
        return _conv2d_forward_im2col(x, w, stride, Ho, Wo)
    return _conv2d_forward_taps(x, w, stride, Ho, Wo)


def _conv2d_grad_input(g: np.ndarray, w: np.ndarray, stride: int,
                       padding: int, in_shape: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of :func:`_conv2d_forward` w.r.t. its input."""
    B, Cin, H, W = in_shape
    Cout, _, kh, kw = w.shape
    Ho, Wo = g.shape[2], g.shape[3]
    dxp = np.zeros((B, Cin, H + 2 * padding, W + 2 * padding), dtype=g.dtype)
    for k in range(kh):
        for l in range(kw):
            contrib = cached_einsum("bohw,oc->bchw", g, w[:, :, k, l])
            dxp[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride] += contrib
    if padding:
        return dxp[:, :, padding:-padding, padding:-padding]
    return dxp


def _conv2d_grad_weight(x: np.ndarray, g: np.ndarray, stride: int,
                        padding: int, kshape: Tuple[int, int]) -> np.ndarray:
    """Adjoint of :func:`_conv2d_forward` w.r.t. its weight."""
    kh, kw = kshape
    if padding:
        x = _pad2d(x, padding)
    Ho, Wo = g.shape[2], g.shape[3]
    Cout, Cin = g.shape[1], x.shape[1]
    B = x.shape[0]
    if _use_im2col(B, Cin, Ho, Wo, kh, kw, x.itemsize):
        cols = _im2col(x, kh, kw, stride, Ho, Wo)
        gm = g.transpose(1, 0, 2, 3).reshape(Cout, B * Ho * Wo)
        return (gm @ cols.T).reshape(Cout, Cin, kh, kw)
    dw = np.empty((Cout, Cin, kh, kw), dtype=g.dtype)
    for k in range(kh):
        for l in range(kw):
            xs = x[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride]
            dw[:, :, k, l] = cached_einsum("bohw,bchw->oc", g, xs)
    return dw


def conv_transpose2d_out_shape(H: int, W: int, kh: int, kw: int, stride: int,
                               padding: int, output_padding: int = 0
                               ) -> Tuple[int, int]:
    """Output spatial shape of a transposed convolution."""
    Ho = (H - 1) * stride - 2 * padding + kh + output_padding
    Wo = (W - 1) * stride - 2 * padding + kw + output_padding
    return Ho, Wo


# ----------------------------------------------------------------------
# Autodiff wrappers
# ----------------------------------------------------------------------
def conv2d(x, w, b=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation with optional bias.

    Parameters mirror ``torch.nn.functional.conv2d`` (single int stride
    and symmetric padding, which is all the models here need).
    """
    x, w = as_tensor(x), as_tensor(w)
    bt: Optional[Tensor] = as_tensor(b) if b is not None else None
    y = _conv2d_forward(x.data, w.data, stride, padding)
    if bt is not None:
        y = y + bt.data.reshape(1, -1, 1, 1)
    in_shape = x.data.shape
    kshape = (w.data.shape[2], w.data.shape[3])

    parents = (x, w) if bt is None else (x, w, bt)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if x.requires_grad:
            x._receive(gm, _conv2d_grad_input(g, w.data, stride, padding, in_shape))
        if w.requires_grad:
            w._receive(gm, _conv2d_grad_weight(x.data, g, stride, padding, kshape))
        if bt is not None and bt.requires_grad:
            bt._receive(gm, g.sum(axis=(0, 2, 3)))

    return Tensor._from_op(y, parents, backward, "conv2d")


def conv_transpose2d(x, w, b=None, stride: int = 1, padding: int = 0,
                     output_padding: int = 0) -> Tensor:
    """2-D transposed convolution (the VAE decoder's upsampler).

    Weight shape is ``(Cin, Cout, kh, kw)`` as in PyTorch.  Implemented
    as the adjoint of :func:`conv2d`: the forward pass *is* the conv
    input-gradient kernel, and the backward passes reuse the conv
    forward / weight-gradient kernels with roles swapped.
    """
    x, w = as_tensor(x), as_tensor(w)
    bt: Optional[Tensor] = as_tensor(b) if b is not None else None
    B, Cin, H, W = x.data.shape
    Cin2, Cout, kh, kw = w.data.shape
    assert Cin == Cin2, f"channel mismatch: {Cin} vs {Cin2}"
    Ho, Wo = conv_transpose2d_out_shape(H, W, kh, kw, stride, padding,
                                        output_padding)
    # Interpret w as a conv weight mapping Cout -> Cin; then
    # conv_transpose(x) == grad_input(conv) evaluated at g = x.
    y = _conv2d_grad_input(
        x.data, w.data, stride, padding, (B, Cout, Ho + 2 * 0, Wo))
    # _conv2d_grad_input computed for in_shape (B,Cout,Ho,Wo) -- the call
    # above passes that directly:
    if bt is not None:
        y = y + bt.data.reshape(1, -1, 1, 1)

    parents = (x, w) if bt is None else (x, w, bt)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if x.requires_grad:
            x._receive(gm, _conv2d_forward(g, w.data, stride, padding))
        if w.requires_grad:
            # dw for the underlying conv with input g and output-grad x.
            w._receive(gm, _conv2d_grad_weight(g, x.data, stride, padding,
                                               (kh, kw)))
        if bt is not None and bt.requires_grad:
            bt._receive(gm, g.sum(axis=(0, 2, 3)))

    return Tensor._from_op(y, parents, backward, "conv_transpose2d")


def avg_pool2d(x, kernel: int) -> Tensor:
    """Non-overlapping average pooling (used by downsampling blocks)."""
    x = as_tensor(x)
    B, C, H, W = x.data.shape
    if H % kernel or W % kernel:
        raise ValueError(f"avg_pool2d requires divisible dims, got {H}x{W} "
                         f"with kernel {kernel}")
    Ho, Wo = H // kernel, W // kernel
    y = x.data.reshape(B, C, Ho, kernel, Wo, kernel).mean(axis=(3, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        gx = np.repeat(np.repeat(g, kernel, axis=2), kernel, axis=3) * scale
        x._receive(gm, gx)

    return Tensor._from_op(y, (x,), backward, "avg_pool2d")


def upsample_nearest2d(x, factor: int) -> Tensor:
    """Nearest-neighbour upsampling (UNet decoder path)."""
    x = as_tensor(x)
    y = np.repeat(np.repeat(x.data, factor, axis=2), factor, axis=3)
    B, C, H, W = x.data.shape

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        gx = g.reshape(B, C, H, factor, W, factor).sum(axis=(3, 5))
        x._receive(gm, gx)

    return Tensor._from_op(y, (x,), backward, "upsample_nearest2d")
