"""Differentiable 2-D convolution ops (tap-loop formulation).

Rather than materialising im2col matrices (memory-heavy for the frame
sizes used here), forward/backward are computed as a short loop over
kernel taps — each tap is a fully vectorised ``einsum`` over the batch.
For the 3x3/5x5 kernels used by the VAE and UNet this is both fast and
cache-friendly (see the HPC guide notes on strided access).

Shape conventions (match PyTorch):

* ``conv2d``:            x ``(B, Cin, H, W)``, w ``(Cout, Cin, kh, kw)``
* ``conv_transpose2d``:  x ``(B, Cin, H, W)``, w ``(Cin, Cout, kh, kw)``
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["conv2d", "conv_transpose2d", "avg_pool2d", "upsample_nearest2d"]


# ----------------------------------------------------------------------
# Raw NumPy kernels (shared by forward and backward passes)
# ----------------------------------------------------------------------
def _conv2d_forward(x: np.ndarray, w: np.ndarray, stride: int,
                    padding: int) -> np.ndarray:
    """y[b,o,i,j] = sum_{c,k,l} x[b,c,i*s+k-p, j*s+l-p] * w[o,c,k,l]."""
    B, Cin, H, W = x.shape
    Cout, Cin2, kh, kw = w.shape
    assert Cin == Cin2, f"channel mismatch: {Cin} vs {Cin2}"
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    Hp, Wp = x.shape[2], x.shape[3]
    Ho = (Hp - kh) // stride + 1
    Wo = (Wp - kw) // stride + 1
    y = np.zeros((B, Cout, Ho, Wo), dtype=x.dtype)
    for k in range(kh):
        for l in range(kw):
            xs = x[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride]
            y += np.einsum("bchw,oc->bohw", xs, w[:, :, k, l], optimize=True)
    return y


def _conv2d_grad_input(g: np.ndarray, w: np.ndarray, stride: int,
                       padding: int, in_shape: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of :func:`_conv2d_forward` w.r.t. its input."""
    B, Cin, H, W = in_shape
    Cout, _, kh, kw = w.shape
    Ho, Wo = g.shape[2], g.shape[3]
    dxp = np.zeros((B, Cin, H + 2 * padding, W + 2 * padding), dtype=g.dtype)
    for k in range(kh):
        for l in range(kw):
            contrib = np.einsum("bohw,oc->bchw", g, w[:, :, k, l], optimize=True)
            dxp[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride] += contrib
    if padding:
        return dxp[:, :, padding:-padding, padding:-padding]
    return dxp


def _conv2d_grad_weight(x: np.ndarray, g: np.ndarray, stride: int,
                        padding: int, kshape: Tuple[int, int]) -> np.ndarray:
    """Adjoint of :func:`_conv2d_forward` w.r.t. its weight."""
    kh, kw = kshape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    Ho, Wo = g.shape[2], g.shape[3]
    Cout, Cin = g.shape[1], x.shape[1]
    dw = np.zeros((Cout, Cin, kh, kw), dtype=g.dtype)
    for k in range(kh):
        for l in range(kw):
            xs = x[:, :, k:k + stride * Ho:stride, l:l + stride * Wo:stride]
            dw[:, :, k, l] = np.einsum("bohw,bchw->oc", g, xs, optimize=True)
    return dw


def conv_transpose2d_out_shape(H: int, W: int, kh: int, kw: int, stride: int,
                               padding: int, output_padding: int = 0
                               ) -> Tuple[int, int]:
    """Output spatial shape of a transposed convolution."""
    Ho = (H - 1) * stride - 2 * padding + kh + output_padding
    Wo = (W - 1) * stride - 2 * padding + kw + output_padding
    return Ho, Wo


# ----------------------------------------------------------------------
# Autodiff wrappers
# ----------------------------------------------------------------------
def conv2d(x, w, b=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation with optional bias.

    Parameters mirror ``torch.nn.functional.conv2d`` (single int stride
    and symmetric padding, which is all the models here need).
    """
    x, w = as_tensor(x), as_tensor(w)
    bt: Optional[Tensor] = as_tensor(b) if b is not None else None
    y = _conv2d_forward(x.data, w.data, stride, padding)
    if bt is not None:
        y = y + bt.data.reshape(1, -1, 1, 1)
    in_shape = x.data.shape
    kshape = (w.data.shape[2], w.data.shape[3])

    parents = (x, w) if bt is None else (x, w, bt)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if x.requires_grad:
            x._receive(gm, _conv2d_grad_input(g, w.data, stride, padding, in_shape))
        if w.requires_grad:
            w._receive(gm, _conv2d_grad_weight(x.data, g, stride, padding, kshape))
        if bt is not None and bt.requires_grad:
            bt._receive(gm, g.sum(axis=(0, 2, 3)))

    return Tensor._from_op(y, parents, backward, "conv2d")


def conv_transpose2d(x, w, b=None, stride: int = 1, padding: int = 0,
                     output_padding: int = 0) -> Tensor:
    """2-D transposed convolution (the VAE decoder's upsampler).

    Weight shape is ``(Cin, Cout, kh, kw)`` as in PyTorch.  Implemented
    as the adjoint of :func:`conv2d`: the forward pass *is* the conv
    input-gradient kernel, and the backward passes reuse the conv
    forward / weight-gradient kernels with roles swapped.
    """
    x, w = as_tensor(x), as_tensor(w)
    bt: Optional[Tensor] = as_tensor(b) if b is not None else None
    B, Cin, H, W = x.data.shape
    Cin2, Cout, kh, kw = w.data.shape
    assert Cin == Cin2, f"channel mismatch: {Cin} vs {Cin2}"
    Ho, Wo = conv_transpose2d_out_shape(H, W, kh, kw, stride, padding,
                                        output_padding)
    # Interpret w as a conv weight mapping Cout -> Cin; then
    # conv_transpose(x) == grad_input(conv) evaluated at g = x.
    y = _conv2d_grad_input(
        x.data, w.data, stride, padding, (B, Cout, Ho + 2 * 0, Wo))
    # _conv2d_grad_input computed for in_shape (B,Cout,Ho,Wo) -- the call
    # above passes that directly:
    if bt is not None:
        y = y + bt.data.reshape(1, -1, 1, 1)

    parents = (x, w) if bt is None else (x, w, bt)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if x.requires_grad:
            x._receive(gm, _conv2d_forward(g, w.data, stride, padding))
        if w.requires_grad:
            # dw for the underlying conv with input g and output-grad x.
            w._receive(gm, _conv2d_grad_weight(g, x.data, stride, padding,
                                               (kh, kw)))
        if bt is not None and bt.requires_grad:
            bt._receive(gm, g.sum(axis=(0, 2, 3)))

    return Tensor._from_op(y, parents, backward, "conv_transpose2d")


def avg_pool2d(x, kernel: int) -> Tensor:
    """Non-overlapping average pooling (used by downsampling blocks)."""
    x = as_tensor(x)
    B, C, H, W = x.data.shape
    if H % kernel or W % kernel:
        raise ValueError(f"avg_pool2d requires divisible dims, got {H}x{W} "
                         f"with kernel {kernel}")
    Ho, Wo = H // kernel, W // kernel
    y = x.data.reshape(B, C, Ho, kernel, Wo, kernel).mean(axis=(3, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        gx = np.repeat(np.repeat(g, kernel, axis=2), kernel, axis=3) * scale
        x._receive(gm, gx)

    return Tensor._from_op(y, (x,), backward, "avg_pool2d")


def upsample_nearest2d(x, factor: int) -> Tensor:
    """Nearest-neighbour upsampling (UNet decoder path)."""
    x = as_tensor(x)
    y = np.repeat(np.repeat(x.data, factor, axis=2), factor, axis=3)
    B, C, H, W = x.data.shape

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        gx = g.reshape(B, C, H, factor, W, factor).sum(axis=(3, 5))
        x._receive(gm, gx)

    return Tensor._from_op(y, (x,), backward, "upsample_nearest2d")
