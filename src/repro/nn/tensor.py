"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate that
replaces PyTorch for this reproduction.  A :class:`Tensor` wraps a
``numpy.ndarray`` and records, for every differentiable operation, a
closure that propagates the output gradient to the operation's inputs.
Calling :meth:`Tensor.backward` runs a topological sort over the
recorded graph and accumulates gradients into ``Tensor.grad``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects (no higher-order
  differentiation is needed anywhere in the paper's pipeline).
* Broadcasting follows NumPy semantics; :func:`unbroadcast` folds a
  broadcast gradient back onto the original operand shape.
* ``float64`` is the default dtype.  The models trained here are small,
  and double precision makes central-difference gradient checking tight
  (every op in this package is verified that way in the test suite).
* The op library lives in :mod:`repro.nn.ops` / :mod:`repro.nn.conv` /
  :mod:`repro.nn.attention`; those modules attach operator dunders to
  :class:`Tensor` at import time.  Importing :mod:`repro.nn` wires
  everything together.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "unbroadcast", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = [True]

# A backward closure receives the output gradient plus the shared
# "pending gradients" map of the ongoing backward pass and is expected
# to call ``parent._receive(grads_map, grad_wrt_parent)`` for each
# differentiable parent it captured.
BackwardFn = Callable[[np.ndarray, Dict[int, np.ndarray]], None]


class no_grad:
    """Context manager disabling graph recording (mirrors ``torch.no_grad``).

    Inside the context every operation produces constant tensors, which
    keeps inference (entropy coding, diffusion sampling, benchmarking)
    free of graph bookkeeping overhead.
    """

    def __enter__(self) -> "no_grad":
        _GRAD_ENABLED.append(False)
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should record the autodiff graph."""
    return _GRAD_ENABLED[-1]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    NumPy broadcasting may (a) prepend dimensions and (b) stretch
    size-1 dimensions.  The adjoint of broadcasting is summation over
    exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array node in a dynamically built autodiff graph.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the tensor value.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.  Leaf tensors used as model parameters set
        this to ``True``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, op: str = "leaf"):
        if isinstance(data, Tensor):  # defensive: unwrap
            data = data.data
        arr = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.op: str = op

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: BackwardFn,
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` if tracing."""
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs, op=op)
        if needs:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        g = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        # Never alias the incoming gradient in-place: backward closures
        # may hand the same array to several parents.
        self.grad = g if self.grad is None else self.grad + g

    def _receive(self, grads_map: Dict[int, np.ndarray], g: np.ndarray) -> None:
        """Route an incoming gradient during a backward pass.

        Leaf tensors accumulate into ``.grad``; interior nodes stage the
        gradient in ``grads_map`` until the topological sweep reaches
        them.
        """
        if type(g) is not np.ndarray or g.dtype != np.float64:
            g = np.asarray(g, dtype=np.float64)
        g = unbroadcast(g, self.data.shape)
        if self._backward is None:
            self._accumulate(g)
            return
        key = id(self)
        if key in grads_map:
            grads_map[key] = grads_map[key] + g
        else:
            grads_map[key] = g

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective w.r.t. this tensor.  May
            be omitted only for scalar tensors (defaults to ``1.0``).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        if self._backward is None:
            self._accumulate(grad)
            return

        # Iterative post-order DFS: diffusion sampling chains build deep
        # graphs that would overflow Python's recursion limit.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, int]] = [(self, 0)]
        visited.add(id(self))
        while stack:
            node, idx = stack.pop()
            if idx < len(node._parents):
                stack.append((node, idx + 1))
                child = node._parents[idx]
                if id(child) not in visited:
                    visited.add(id(child))
                    if child._backward is not None:
                        stack.append((child, 0))
                    # Leaves need no ordering; they only accumulate.
            else:
                topo.append(node)

        grads_map: Dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads_map.pop(id(node), None)
            if g is None:
                continue  # dead branch (e.g. unused output of split)
            assert node._backward is not None
            node._backward(g, grads_map)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new constant tensor sharing this tensor's data."""
        out = Tensor(0.0)
        out.data = self.data  # share storage
        return out

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tensor(shape={self.data.shape}, op={self.op!r}, "
            f"requires_grad={self.requires_grad})"
        )

    def __hash__(self) -> int:
        return id(self)


def as_tensor(x: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce ``x`` to a (constant) :class:`Tensor` if it is not one."""
    return x if isinstance(x, Tensor) else Tensor(x)
