"""Generalized divisive normalization (GDN / IGDN).

The canonical nonlinearity of learned image compression (Ballé et al.):

    GDN:   y_i = x_i / sqrt(beta_i + sum_j gamma_ij x_j^2)
    IGDN:  y_i = x_i * sqrt(beta_i + sum_j gamma_ij x_j^2)

GDN gaussianizes channel statistics — exactly the property transform
coding wants before uniform quantization — and the VAE of every
hyperprior codec since [4] uses it in the encoder with its inverse in
the decoder.  Our VAE defaults to plain activations (matching the
paper's silence on the matter); ``VAEConfig(activation="gdn")`` swaps
these layers in, and ``bench_ablations`` measures what the choice is
worth at equal rate.

Positivity of ``beta`` and ``gamma`` is maintained the same way the
reference implementation does: parameters are stored through a
square-root reparameterization with a small pedestal and passed
through :func:`repro.nn.ops.lower_bound` (straight-through gradient at
the boundary), so training can push a pinned parameter back into the
interior.
"""

from __future__ import annotations

import numpy as np

from . import ops
from .modules import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["GDN"]

_PEDESTAL = 1e-6  # reparameterization offset, as in the reference code


class GDN(Module):
    """GDN layer over ``(B, C, H, W)`` feature maps.

    Parameters
    ----------
    channels:
        Number of feature channels ``C``.
    inverse:
        ``False`` -> divisive (encoder), ``True`` -> multiplicative
        (decoder, "IGDN").
    beta_min:
        Lower bound for the stabilizing ``beta`` vector.
    gamma_init:
        Initial diagonal of the channel-coupling matrix ``gamma``.
    """

    def __init__(self, channels: int, inverse: bool = False,
                 beta_min: float = 1e-6, gamma_init: float = 0.1):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if beta_min <= 0:
            raise ValueError("beta_min must be positive")
        self.channels = channels
        self.inverse = inverse
        self.beta_min = beta_min
        # stored as sqrt(value + pedestal): squaring in forward keeps the
        # effective parameters nonnegative for free, and lower_bound
        # keeps the *stored* value from wandering below the pedestal
        self.beta = Parameter(np.sqrt(np.ones(channels) + _PEDESTAL))
        gamma = gamma_init * np.eye(channels)
        self.gamma = Parameter(np.sqrt(gamma + _PEDESTAL))

    # ------------------------------------------------------------------
    def _constrained(self) -> tuple:
        beta_r = ops.lower_bound(self.beta,
                                 float(np.sqrt(self.beta_min + _PEDESTAL)))
        gamma_r = ops.lower_bound(self.gamma, float(np.sqrt(_PEDESTAL)))
        beta = ops.sub(ops.mul(beta_r, beta_r), _PEDESTAL)
        gamma = ops.sub(ops.mul(gamma_r, gamma_r), _PEDESTAL)
        return beta, gamma

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if len(x.shape) != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"expected (B, {self.channels}, H, W), got {x.shape}")
        B, C, H, W = x.shape
        beta, gamma = self._constrained()
        x2 = ops.mul(x, x)
        flat = ops.reshape(x2, (B, C, H * W))
        norm2 = ops.matmul(gamma, flat)              # (C,C) @ (B,C,HW)
        norm2 = ops.add(norm2, ops.reshape(beta, (1, C, 1)))
        norm = ops.sqrt(norm2)
        norm = ops.reshape(norm, (B, C, H, W))
        if self.inverse:
            return ops.mul(x, norm)
        return ops.div(x, norm)

    def extra_repr(self) -> str:  # pragma: no cover - cosmetic
        return (f"channels={self.channels}, "
                f"inverse={self.inverse}")
