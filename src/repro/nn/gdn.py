"""Generalized divisive normalization (GDN / IGDN).

The canonical nonlinearity of learned image compression (Ballé et al.):

    GDN:   y_i = x_i / sqrt(beta_i + sum_j gamma_ij x_j^2)
    IGDN:  y_i = x_i * sqrt(beta_i + sum_j gamma_ij x_j^2)

GDN gaussianizes channel statistics — exactly the property transform
coding wants before uniform quantization — and the VAE of every
hyperprior codec since [4] uses it in the encoder with its inverse in
the decoder.  Our VAE defaults to plain activations (matching the
paper's silence on the matter); ``VAEConfig(activation="gdn")`` swaps
these layers in, and ``bench_ablations`` measures what the choice is
worth at equal rate.

Positivity of ``beta`` and ``gamma`` is maintained the same way the
reference implementation does: parameters are stored through a
square-root reparameterization with a small pedestal and passed
through :func:`repro.nn.ops.lower_bound` (straight-through gradient at
the boundary), so training can push a pinned parameter back into the
interior.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .modules import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["GDN"]

_PEDESTAL = 1e-6  # reparameterization offset, as in the reference code


def _gdn_forward(x: np.ndarray, beta_p: np.ndarray, gamma_p: np.ndarray,
                 beta_bound: float, gamma_bound: float, inverse: bool
                 ) -> Tuple[np.ndarray, tuple]:
    """Fused norm-pool forward; returns the output and the backward state.

    One expression chain replaces the former per-op Tensor graph
    (lower_bound → square → matmul → add → sqrt → div/mul); the numpy
    calls and their order are identical, so outputs match the old
    chained formulation bitwise.
    """
    B, C, H, W = x.shape
    beta_r = np.maximum(beta_p, beta_bound)
    gamma_r = np.maximum(gamma_p, gamma_bound)
    beta = beta_r * beta_r - _PEDESTAL
    gamma = gamma_r * gamma_r - _PEDESTAL
    x2 = x * x
    flat = x2.reshape(B, C, H * W)
    norm3 = np.sqrt(gamma @ flat + beta.reshape(1, C, 1))
    norm = norm3.reshape(B, C, H, W)
    out = x * norm if inverse else x / norm
    state = (beta_r, gamma_r, gamma, flat, norm3, norm)
    return out, state


def _gdn_apply(x: Tensor, beta_p: Parameter, gamma_p: Parameter,
               beta_bound: float, gamma_bound: float,
               inverse: bool) -> Tensor:
    """Autodiff wrapper around :func:`_gdn_forward` (analytic backward)."""
    out, state = _gdn_forward(x.data, beta_p.data, gamma_p.data,
                              beta_bound, gamma_bound, inverse)
    beta_r, gamma_r, gamma, flat, norm3, norm = state
    xd = x.data
    B, C = xd.shape[0], xd.shape[1]
    above_b = beta_p.data >= beta_bound
    above_g = gamma_p.data >= gamma_bound

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if inverse:
            gnorm = g * xd
        else:
            gnorm = -g * xd / (norm * norm)
        # chain through sqrt back to the pooled response (B, C, HW)
        gnorm2 = gnorm.reshape(norm3.shape) * 0.5 / norm3
        if x.requires_grad:
            gx = g * norm if inverse else g / norm
            gx2 = (np.swapaxes(gamma, -1, -2) @ gnorm2).reshape(xd.shape)
            x._receive(gm, gx + 2.0 * xd * gx2)
        if beta_p.requires_grad:
            gbeta_r = 2.0 * gnorm2.sum(axis=(0, 2)) * beta_r
            # straight-through lower_bound: pass grads above the bound
            # or pointing back into the feasible region
            beta_p._receive(gm, gbeta_r * (above_b | (gbeta_r < 0)))
        if gamma_p.requires_grad:
            ggamma = np.einsum("bik,bjk->ij", gnorm2, flat)
            ggamma_r = 2.0 * ggamma * gamma_r
            gamma_p._receive(gm, ggamma_r * (above_g | (ggamma_r < 0)))

    return Tensor._from_op(out, (x, beta_p, gamma_p), backward, "gdn")


class GDN(Module):
    """GDN layer over ``(B, C, H, W)`` feature maps.

    Parameters
    ----------
    channels:
        Number of feature channels ``C``.
    inverse:
        ``False`` -> divisive (encoder), ``True`` -> multiplicative
        (decoder, "IGDN").
    beta_min:
        Lower bound for the stabilizing ``beta`` vector.
    gamma_init:
        Initial diagonal of the channel-coupling matrix ``gamma``.
    """

    def __init__(self, channels: int, inverse: bool = False,
                 beta_min: float = 1e-6, gamma_init: float = 0.1):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if beta_min <= 0:
            raise ValueError("beta_min must be positive")
        self.channels = channels
        self.inverse = inverse
        self.beta_min = beta_min
        # stored as sqrt(value + pedestal): squaring in forward keeps the
        # effective parameters nonnegative for free, and lower_bound
        # keeps the *stored* value from wandering below the pedestal
        self.beta = Parameter(np.sqrt(np.ones(channels) + _PEDESTAL))
        gamma = gamma_init * np.eye(channels)
        self.gamma = Parameter(np.sqrt(gamma + _PEDESTAL))

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float]:
        return (float(np.sqrt(self.beta_min + _PEDESTAL)),
                float(np.sqrt(_PEDESTAL)))

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if len(x.shape) != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"expected (B, {self.channels}, H, W), got {x.shape}")
        beta_bound, gamma_bound = self._bounds()
        return _gdn_apply(x, self.beta, self.gamma, beta_bound, gamma_bound,
                          self.inverse)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        beta_bound, gamma_bound = self._bounds()
        return _gdn_forward(arr, self.beta.data, self.gamma.data,
                            beta_bound, gamma_bound, self.inverse)[0]

    def extra_repr(self) -> str:  # pragma: no cover - cosmetic
        return (f"channels={self.channels}, "
                f"inverse={self.inverse}")
