"""Layer/module system built on the autodiff tensors.

A :class:`Module` owns named parameters (:class:`Parameter` tensors) and
child modules, supports recursive traversal, train/eval switching, and
state-dict (de)serialization — the minimal subset of ``torch.nn`` the
paper's models require.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import conv as F_conv
from . import fastpath
from . import init as initializers
from . import ops
from .tensor import Tensor, as_tensor


def _data(x) -> np.ndarray:
    """Raw float64 array of a tensor-like (fast-path input coercion)."""
    return x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)

__all__ = [
    "Parameter", "Module", "Sequential", "ModuleList", "Identity",
    "Linear", "Conv2d", "ConvTranspose2d", "GroupNorm", "LayerNorm",
    "ReLU", "LeakyReLU", "SiLU", "GELU", "Tanh", "Sigmoid",
]


class Parameter(Tensor):
    """A trainable leaf tensor."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True, op="param")
        self.requires_grad = True  # even inside no_grad-constructed models


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute magic ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (prefix + name, p)
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix + mname + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())

    # -- state -----------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        for mod in self.modules():
            mod.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for name, arr in state.items():
            if name not in own:
                continue
            p = own[name]
            arr = np.asarray(arr, dtype=np.float64)
            if p.data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {p.data.shape} vs {arr.shape}")
            p.data = arr.copy()

    # -- call ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        for layer in self.layers:
            x = layer(x)
        return x

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        """No-grad chain; conv + elementwise pairs run as one fused call."""
        i, n = 0, len(self.layers)
        while i < n:
            layer = self.layers[i]
            if (isinstance(layer, (Conv2d, ConvTranspose2d)) and i + 1 < n
                    and getattr(self.layers[i + 1], "_elementwise", False)):
                arr = layer._fast(arr, act=self.layers[i + 1]._fast)
                i += 2
                continue
            fast = getattr(layer, "_fast", None)
            arr = fast(arr) if fast is not None else _data(layer(Tensor(arr)))
            i += 1
        return arr

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


class ModuleList(Module):
    """List container registering children for traversal."""

    def __init__(self, modules: Optional[Sequence[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: int) -> Module:
        return self._items[i]

    def forward(self, *a, **k):  # pragma: no cover - containers aren't called
        raise RuntimeError("ModuleList is not callable")


class Identity(Module):
    def forward(self, x):
        return x

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return arr


class Linear(Module):
    """Affine map ``y = x Wᵀ + b`` on the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_uniform(rng, (out_features, in_features)))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        y = ops.matmul(as_tensor(x), ops.transpose(self.weight))
        if self.bias is not None:
            y = ops.add(y, self.bias)
        return y

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.linear(
            arr, self.weight.data,
            self.bias.data if self.bias is not None else None)


class Conv2d(Module):
    """2-D convolution layer over ``(B, C, H, W)`` inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride, self.padding = stride, padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(initializers.kaiming_uniform(rng, shape))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return F_conv.conv2d(as_tensor(x), self.weight, self.bias,
                             stride=self.stride, padding=self.padding)

    def _fast(self, arr: np.ndarray, act=None) -> np.ndarray:
        return fastpath.conv2d(
            arr, self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride, self.padding, act=act)


class ConvTranspose2d(Module):
    """2-D transposed convolution layer (upsampling decoder blocks)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, output_padding: int = 0,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride, self.padding = stride, padding
        self.output_padding = output_padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(initializers.kaiming_uniform(rng, shape))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return F_conv.conv_transpose2d(
            as_tensor(x), self.weight, self.bias, stride=self.stride,
            padding=self.padding, output_padding=self.output_padding)

    def _fast(self, arr: np.ndarray, act=None) -> np.ndarray:
        return fastpath.conv_transpose2d(
            arr, self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride, self.padding, self.output_padding, act=act)


class GroupNorm(Module):
    """Group normalization over ``(B, C, *spatial)`` inputs."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"channels ({num_channels}) not divisible by groups "
                f"({num_groups})")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels))
        self.bias = Parameter(np.zeros(num_channels))

    def forward(self, x) -> Tensor:
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        x = as_tensor(x)
        shape = x.shape
        B, C = shape[0], shape[1]
        spatial = int(np.prod(shape[2:])) if len(shape) > 2 else 1
        g = self.num_groups
        xg = ops.reshape(x, (B, g, (C // g) * spatial))
        mu = ops.mean(xg, axis=2, keepdims=True)
        v = ops.var(xg, axis=2, keepdims=True)
        xn = ops.div(ops.sub(xg, mu), ops.sqrt(ops.add(v, self.eps)))
        xn = ops.reshape(xn, shape)
        wshape = (1, C) + (1,) * (len(shape) - 2)
        w = ops.reshape(self.weight, wshape)
        b = ops.reshape(self.bias, wshape)
        return ops.add(ops.mul(xn, w), b)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.group_norm(arr, self.num_groups, self.weight.data,
                                   self.bias.data, self.eps)


class LayerNorm(Module):
    """Layer normalization over the last axis (token features)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x) -> Tensor:
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        x = as_tensor(x)
        mu = ops.mean(x, axis=-1, keepdims=True)
        v = ops.var(x, axis=-1, keepdims=True)
        xn = ops.div(ops.sub(x, mu), ops.sqrt(ops.add(v, self.eps)))
        return ops.add(ops.mul(xn, self.weight), self.bias)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.layer_norm(arr, self.weight.data, self.bias.data,
                                   self.eps)


class ReLU(Module):
    _elementwise = True

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.relu(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.relu(arr)


class LeakyReLU(Module):
    _elementwise = True

    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.leaky_relu(x, self.slope)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.leaky_relu(arr, self.slope)


class SiLU(Module):
    _elementwise = True

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.silu(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.silu(arr)


class GELU(Module):
    _elementwise = True

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.gelu(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.gelu(arr)


class Tanh(Module):
    _elementwise = True

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.tanh(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.tanh(arr)


class Sigmoid(Module):
    _elementwise = True

    def forward(self, x):
        if fastpath.active():
            return Tensor(self._fast(_data(x)))
        return ops.sigmoid(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return fastpath.sigmoid(arr)
