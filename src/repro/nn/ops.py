"""Differentiable operation library for :class:`repro.nn.Tensor`.

Every public function takes tensors (or array-likes, which are promoted
to constant tensors), computes the forward value with NumPy, and records
a backward closure.  Operator dunders are attached to :class:`Tensor` at
the bottom of this module so that ``a + b``, ``a @ b`` etc. work.

All ops here are verified against central finite differences in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special as _sp_special

from .tensor import Tensor, as_tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow_", "matmul",
    "exp", "log", "sqrt", "abs_", "tanh", "sigmoid", "relu", "leaky_relu",
    "silu", "gelu", "softplus", "erf",
    "sum_", "mean", "max_", "min_", "var",
    "reshape", "transpose", "moveaxis", "swapaxes", "broadcast_to",
    "concat", "stack", "split", "pad", "getitem", "flip",
    "softmax", "log_softmax", "clip", "where", "dropout", "lower_bound",
    "mse_loss", "l1_loss",
]

TensorLike = Union[Tensor, np.ndarray, float, int]


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            a._receive(gm, g)
        if b.requires_grad:
            b._receive(gm, g)

    return Tensor._from_op(out_data, (a, b), backward, "add")


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            a._receive(gm, g)
        if b.requires_grad:
            b._receive(gm, -g)

    return Tensor._from_op(out_data, (a, b), backward, "sub")


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            a._receive(gm, g * b.data)
        if b.requires_grad:
            b._receive(gm, g * a.data)

    return Tensor._from_op(out_data, (a, b), backward, "mul")


def div(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            a._receive(gm, g / b.data)
        if b.requires_grad:
            b._receive(gm, -g * a.data / (b.data * b.data))

    return Tensor._from_op(out_data, (a, b), backward, "div")


def neg(a: TensorLike) -> Tensor:
    a = as_tensor(a)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, -g)

    return Tensor._from_op(-a.data, (a,), backward, "neg")


def pow_(a: TensorLike, p: float) -> Tensor:
    """Elementwise power with a *constant* exponent."""
    a = as_tensor(a)
    out_data = a.data ** p

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * p * a.data ** (p - 1.0))

    return Tensor._from_op(out_data, (a,), backward, f"pow{p}")


def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    """Batched matrix multiply with NumPy ``@`` broadcasting semantics."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            if b.data.ndim == 1:
                ga = np.expand_dims(g, -1) * b.data  # outer-ish
            else:
                ga = g @ np.swapaxes(b.data, -1, -2)
            a._receive(gm, ga)
        if b.requires_grad:
            if a.data.ndim == 1:
                gb = np.expand_dims(a.data, -1) * np.expand_dims(g, -2)
                gb = gb.reshape(b.data.shape) if gb.shape == b.data.shape else gb
            else:
                gb = np.swapaxes(a.data, -1, -2) @ g
            b._receive(gm, gb)

    return Tensor._from_op(out_data, (a, b), backward, "matmul")


# ----------------------------------------------------------------------
# Elementwise transcendental / activation functions
# ----------------------------------------------------------------------
def exp(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * out_data)

    return Tensor._from_op(out_data, (a,), backward, "exp")


def log(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g / a.data)

    return Tensor._from_op(out_data, (a,), backward, "log")


def sqrt(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * 0.5 / out_data)

    return Tensor._from_op(out_data, (a,), backward, "sqrt")


def abs_(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.abs(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * np.sign(a.data))

    return Tensor._from_op(out_data, (a,), backward, "abs")


def tanh(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * (1.0 - out_data * out_data))

    return Tensor._from_op(out_data, (a,), backward, "tanh")


def sigmoid(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = _sp_special.expit(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * out_data * (1.0 - out_data))

    return Tensor._from_op(out_data, (a,), backward, "sigmoid")


def relu(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * mask)

    return Tensor._from_op(a.data * mask, (a,), backward, "relu")


def leaky_relu(a: TensorLike, slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    factor = np.where(a.data > 0, 1.0, slope)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * factor)

    return Tensor._from_op(a.data * factor, (a,), backward, "leaky_relu")


def silu(a: TensorLike) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)`` — the UNet's activation."""
    a = as_tensor(a)
    s = _sp_special.expit(a.data)
    out_data = a.data * s

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * (s + a.data * s * (1.0 - s)))

    return Tensor._from_op(out_data, (a,), backward, "silu")


def erf(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_data = _sp_special.erf(a.data)
    coef = 2.0 / math.sqrt(math.pi)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * coef * np.exp(-a.data * a.data))

    return Tensor._from_op(out_data, (a,), backward, "erf")


def gelu(a: TensorLike) -> Tensor:
    """Exact GELU via the Gauss error function."""
    a = as_tensor(a)
    x = a.data
    cdf = 0.5 * (1.0 + _sp_special.erf(x / math.sqrt(2.0)))
    out_data = x * cdf
    pdf = np.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * (cdf + x * pdf))

    return Tensor._from_op(out_data, (a,), backward, "gelu")


def softplus(a: TensorLike) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    a = as_tensor(a)
    out_data = np.logaddexp(0.0, a.data)
    s = _sp_special.expit(a.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * s)

    return Tensor._from_op(out_data, (a,), backward, "softplus")


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
Axis = Optional[Union[int, Tuple[int, ...]]]


def _expand_reduced(g: np.ndarray, shape: Tuple[int, ...], axis: Axis,
                    keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back onto the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(g, shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    if not keepdims:
        for a in sorted(axes):
            g = np.expand_dims(g, a)
    return np.broadcast_to(g, shape)


def sum_(a: TensorLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, _expand_reduced(g, a.data.shape, axis, keepdims))

    return Tensor._from_op(out_data, (a,), backward, "sum")


def mean(a: TensorLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    n = a.data.size / max(out_data.size, 1)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, _expand_reduced(g, a.data.shape, axis, keepdims) / n)

    return Tensor._from_op(out_data, (a,), backward, "mean")


def var(a: TensorLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased (population) variance, as used by normalization layers."""
    a = as_tensor(a)
    mu = a.data.mean(axis=axis, keepdims=True)
    diff = a.data - mu
    out_data = (diff * diff).mean(axis=axis, keepdims=keepdims)
    n = a.data.size / max(mu.size, 1)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        ge = _expand_reduced(g, a.data.shape, axis, keepdims)
        a._receive(gm, ge * 2.0 * diff / n)

    return Tensor._from_op(out_data, (a,), backward, "var")


def _minmax(a: TensorLike, axis: Axis, keepdims: bool, fn, name: str) -> Tensor:
    a = as_tensor(a)
    out_data = fn(a.data, axis=axis, keepdims=keepdims)
    expanded = fn(a.data, axis=axis, keepdims=True)
    mask = (a.data == expanded)
    # Split gradient equally among ties (matches subgradient convention).
    counts = mask.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        ge = _expand_reduced(g, a.data.shape, axis, keepdims)
        a._receive(gm, ge * mask / counts)

    return Tensor._from_op(out_data, (a,), backward, name)


def max_(a: TensorLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    return _minmax(a, axis, keepdims, np.max, "max")


def min_(a: TensorLike, axis: Axis = None, keepdims: bool = False) -> Tensor:
    return _minmax(a, axis, keepdims, np.min, "min")


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a: TensorLike, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    shape = tuple(shape)
    out_data = a.data.reshape(shape)
    in_shape = a.data.shape

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g.reshape(in_shape))

    return Tensor._from_op(out_data, (a,), backward, "reshape")


def transpose(a: TensorLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.data.ndim)))
    axes = tuple(axes)
    inv = tuple(np.argsort(axes))
    out_data = a.data.transpose(axes)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g.transpose(inv))

    return Tensor._from_op(out_data, (a,), backward, "transpose")


def swapaxes(a: TensorLike, ax1: int, ax2: int) -> Tensor:
    a = as_tensor(a)
    axes = list(range(a.data.ndim))
    axes[ax1], axes[ax2] = axes[ax2], axes[ax1]
    return transpose(a, axes)


def moveaxis(a: TensorLike, src: int, dst: int) -> Tensor:
    a = as_tensor(a)
    axes = list(range(a.data.ndim))
    axes.insert(dst % a.data.ndim, axes.pop(src % a.data.ndim))
    return transpose(a, axes)


def broadcast_to(a: TensorLike, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    shape = tuple(shape)
    out_data = np.broadcast_to(a.data, shape)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g)  # _receive unbroadcasts

    return Tensor._from_op(out_data.copy(), (a,), backward, "broadcast_to")


def concat(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(lo, hi)
                t._receive(gm, g[tuple(sl)])

    return Tensor._from_op(out_data, tuple(ts), backward, "concat")


def stack(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        gs = np.moveaxis(g, axis, 0)
        for i, t in enumerate(ts):
            if t.requires_grad:
                t._receive(gm, gs[i])

    return Tensor._from_op(out_data, tuple(ts), backward, "stack")


def split(a: TensorLike, sections: int, axis: int = 0) -> List[Tensor]:
    """Split into equal sections along ``axis`` (like ``np.split``)."""
    a = as_tensor(a)
    pieces = np.split(a.data, sections, axis=axis)
    outs: List[Tensor] = []
    for i, piece in enumerate(pieces):
        idx = i
        width = piece.shape[axis]

        def backward(g: np.ndarray, gm: Dict[int, np.ndarray],
                     idx=idx, width=width) -> None:
            full = np.zeros_like(a.data)
            sl = [slice(None)] * full.ndim
            sl[axis] = slice(idx * width, (idx + 1) * width)
            full[tuple(sl)] = g
            a._receive(gm, full)

        outs.append(Tensor._from_op(piece.copy(), (a,), backward, f"split{i}"))
    return outs


def getitem(a: TensorLike, idx) -> Tensor:
    """Differentiable ``a[idx]`` (basic and advanced indexing)."""
    a = as_tensor(a)
    out_data = a.data[idx]

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, idx, g)
        a._receive(gm, full)

    out = Tensor._from_op(
        out_data.copy() if isinstance(out_data, np.ndarray) else out_data,
        (a,), backward, "getitem")
    return out


def pad(a: TensorLike, pad_width: Sequence[Tuple[int, int]],
        mode: str = "constant") -> Tensor:
    """Differentiable ``np.pad`` supporting ``constant`` and ``reflect``.

    ``reflect`` matches the paper's reflection padding used to bring
    E3SM frames up to the training crop size.
    """
    a = as_tensor(a)
    pad_width = [tuple(p) for p in pad_width]
    out_data = np.pad(a.data, pad_width, mode=mode)
    in_shape = a.data.shape

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        core = tuple(slice(lo, lo + n) for (lo, _), n in zip(pad_width, in_shape))
        if mode == "constant":
            a._receive(gm, g[core])
            return
        if mode == "reflect":
            # Adjoint of reflection: fold mirrored borders back in.
            acc = g.copy()
            for ax, (lo, hi) in enumerate(pad_width):
                n = acc.shape[ax]
                idx_core = slice(lo, n - hi)

                def take(s):
                    sl = [slice(None)] * acc.ndim
                    sl[ax] = s
                    return tuple(sl)

                new_shape = list(acc.shape)
                new_shape[ax] = n - lo - hi
                folded = acc[take(idx_core)].copy()
                if lo:
                    mirror = acc[take(slice(lo - 1, None, -1))]
                    sl = [slice(None)] * folded.ndim
                    sl[ax] = slice(1, 1 + lo)
                    folded[tuple(sl)] += mirror
                if hi:
                    mirror = acc[take(slice(n - 1, n - hi - 1, -1))]
                    sl = [slice(None)] * folded.ndim
                    width = folded.shape[ax]
                    sl[ax] = slice(width - hi - 1, width - 1)
                    folded[tuple(sl)] += mirror
                acc = folded
            a._receive(gm, acc)
            return
        raise ValueError(f"unsupported pad mode for backward: {mode!r}")

    return Tensor._from_op(out_data, (a,), backward, f"pad[{mode}]")


def flip(a: TensorLike, axis: Union[int, Tuple[int, ...]]) -> Tensor:
    a = as_tensor(a)
    out_data = np.flip(a.data, axis=axis)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, np.flip(g, axis=axis))

    return Tensor._from_op(out_data.copy(), (a,), backward, "flip")


# ----------------------------------------------------------------------
# Composite / misc
# ----------------------------------------------------------------------
def softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        a._receive(gm, out_data * (g - dot))

    return Tensor._from_op(out_data, (a,), backward, "softmax")


def log_softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (a,), backward, "log_softmax")


def clip(a: TensorLike, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)
    out_data = np.clip(a.data, lo, hi)
    mask = (a.data >= lo) & (a.data <= hi)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * mask)

    return Tensor._from_op(out_data, (a,), backward, "clip")


def where(cond: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Select elementwise; ``cond`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(cond, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        if a.requires_grad:
            a._receive(gm, np.where(cond, g, 0.0))
        if b.requires_grad:
            b._receive(gm, np.where(cond, 0.0, g))

    return Tensor._from_op(out_data, (a, b), backward, "where")


def dropout(a: TensorLike, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or p == 0."""
    a = as_tensor(a)
    if not training or p <= 0.0:
        return a
    keep = 1.0 - p
    mask = (rng.random(a.data.shape) < keep) / keep

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        a._receive(gm, g * mask)

    return Tensor._from_op(a.data * mask, (a,), backward, "dropout")


def lower_bound(a: TensorLike, bound: float) -> Tensor:
    """``max(a, bound)`` with a straight-through-style gradient.

    Unlike :func:`clip`, the gradient is passed through whenever it
    points back *into* the feasible region, so parameters pinned at the
    bound (e.g. Gaussian scales at ``SCALE_MIN``) can still recover.
    This mirrors the ``LowerBound`` autograd function of Ballé et al.'s
    reference implementation.
    """
    a = as_tensor(a)
    out_data = np.maximum(a.data, bound)
    above = a.data >= bound

    def backward(g: np.ndarray, gm: Dict[int, np.ndarray]) -> None:
        # pass grad if above the bound, or if the gradient pushes the
        # value upward (g < 0 means increasing a decreases loss).
        pass_through = above | (g < 0)
        a._receive(gm, g * pass_through)

    return Tensor._from_op(out_data, (a,), backward, "lower_bound")


def mse_loss(pred: TensorLike, target: TensorLike) -> Tensor:
    """Mean squared error — the distortion term of Eq. 8 and loss of Eq. 7."""
    pred, target = as_tensor(pred), as_tensor(target)
    diff = sub(pred, target)
    return mean(mul(diff, diff))


def l1_loss(pred: TensorLike, target: TensorLike) -> Tensor:
    pred, target = as_tensor(pred), as_tensor(target)
    return mean(abs_(sub(pred, target)))


# ----------------------------------------------------------------------
# Attach operator dunders & tensor methods
# ----------------------------------------------------------------------
def _attach() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, p: pow_(self, p)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, idx: getitem(self, idx)

    Tensor.sum = lambda self, axis=None, keepdims=False: sum_(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.var = lambda self, axis=None, keepdims=False: var(self, axis, keepdims)
    Tensor.max = lambda self, axis=None, keepdims=False: max_(self, axis, keepdims)
    Tensor.min = lambda self, axis=None, keepdims=False: min_(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list))
        else shape)
    Tensor.transpose = lambda self, axes=None: transpose(self, axes)
    Tensor.swapaxes = lambda self, ax1, ax2: swapaxes(self, ax1, ax2)
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self: log(self)
    Tensor.sqrt = lambda self: sqrt(self)
    Tensor.abs = lambda self: abs_(self)
    Tensor.tanh = lambda self: tanh(self)
    Tensor.sigmoid = lambda self: sigmoid(self)
    Tensor.clip = lambda self, lo, hi: clip(self, lo, hi)


_attach()
