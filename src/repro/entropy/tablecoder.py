"""Table-cached LUT rANS coder (``trans``) and the process table cache.

Entropy fast path, round 2.  The ``vrans`` backend removed the
per-symbol Python loop, but its decoder still resolves every lane's
symbol with a ``searchsorted`` over the cumulative rows, and *both*
endpoints rebuild the b-uniqueness rescale from scratch on every call
— for every window of every shard, even though the quantized-parameter
tables of the factorized and Gaussian models repeat identically across
windows.  This module removes both costs:

**Slot→symbol LUT (tANS-style O(1) decode).**  Every context row is
rescaled once to one *shared* power-of-two total ``2^precision``
(``precision = ceil(log2(max row total))``; the partition-preserving
map ``c -> c * 2^p // total`` of :mod:`repro.entropy.rans`).  With a
shared power-of-two total, the decode slot is a bit-mask of the state,
and three precomputed lookup tables — ``slot -> symbol``,
``slot -> freq``, ``slot -> slot - cum_lo`` — turn the whole symbol
resolution *and* the state update into one fancy-index gather each:

    slot = x & mask
    sym  = sym_lut[ctx, slot]                  # O(1), no search
    x    = freq_lut[ctx, slot] * (x >> p) + bias_lut[ctx, slot]

This also erases the mixed-per-row-total slow path ``vrans`` falls back
to: after the shared rescale every row has the same total by
construction.  The LUTs are built vectorized (``np.repeat`` over the
rescaled frequencies) and cover all ``2^p`` slots of every row exactly
— a malformed table that cannot cover its slots is rejected at build
time, so a masked slot can never index out of range.

**Cross-window table reuse (:class:`TableCache`).**  Rescale, LUT
build and the encode-side rescaled cumulative table are computed once
per *distinct* table and memoized in a process-wide LRU keyed on a
cheap digest of the cumulative table bytes (plus the derivation kind),
so the thousands of windows of a sweep that share one quantized table
pay the build exactly once.  The cache holds only *derived* state: the
wire format is decodable by table reconstruction alone, and a cold
cache reproduces byte-identical streams (asserted in the tests).

Wire layout mirrors ``vrans`` (``u8 lane count | lanes x u64 final
states (LE) | u32 words (LE)``) under its own backend tag; the lane
policy caps at :data:`MAX_LANES` = 255 lanes (vs 64 for ``vrans``)
because the leaner per-step kernel amortizes across wider steps.
Decoding is strict: truncated or leftover words and lanes that do not
return to ``RANS_L`` raise :class:`~repro.entropy.coder.EntropyDecodeError`.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, Dict, NamedTuple, Optional, Tuple

import numpy as np

from ..util import LRUCache
from .coder import EntropyDecodeError, check_contexts
from .rangecoder import MAX_TOTAL
from .rans import RANS_L

__all__ = ["TableCache", "get_table_cache", "TransTables",
           "build_trans_tables", "encode_symbols_trans",
           "decode_symbols_trans", "lane_count", "MAX_LANES"]

#: Largest storable lane count (the header field is one byte).
MAX_LANES = 255

_STATE_L = np.uint64(RANS_L)
_WORD_BITS = np.uint64(32)
_WORD_MASK = np.uint64(0xFFFFFFFF)
#: Numerator of the renormalization threshold: ``b * RANS_L = 2^63``.
_X_MAX_NUM = np.uint64((1 << 32) * RANS_L)


def lane_count(n: int) -> int:
    """Deterministic lane width for an ``n``-symbol stream.

    Same scaling rule as ``vrans`` (the ``lanes * 8``-byte state header
    stays a bounded fraction of small payloads) but with the cap raised
    to the full one-byte range: the LUT kernel does so little work per
    step that wider steps keep buying wall clock where ``vrans``'s
    searchsorted kernel had already flattened out.
    """
    return max(1, min(MAX_LANES, n // 128))


# ----------------------------------------------------------------------
# Process-wide cache of derived coding tables
# ----------------------------------------------------------------------
def _value_nbytes(value: Any) -> int:
    """Total ndarray bytes held by a cached value (arrays, tuples of
    arrays, or NamedTuples thereof)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, tuple):
        return sum(_value_nbytes(v) for v in value)
    return 0


class TableCache:
    """LRU cache of coding tables derived from cumulative-frequency
    tables.

    Keys are caller-built tuples whose array parts go through
    :meth:`digest` (a cheap BLAKE2 digest of dtype/shape/bytes), so two
    windows carrying byte-identical tables share one entry regardless
    of object identity.  Values are immutable derived artifacts — the
    ``trans`` LUT bundle, ``rans``'s power-of-two rescaled rows, the
    quantized model tables of :mod:`repro.entropy.factorized` and
    :mod:`repro.entropy.gaussian` — never anything the wire format
    depends on: a cold cache rebuilds bit-identical state.

    Bounded by entry count *and* total ndarray bytes (LUT bundles for
    16-bit-precision tables run tens of MiB); eviction is
    least-recently-used.  Thread-safe: the engine's window pools hit
    one shared table concurrently, and the first job's build blocks the
    rest instead of duplicating it.  A thin wrapper over the shared
    :class:`repro.util.LRUCache` (byte sizes come from
    :func:`_value_nbytes`).
    """

    def __init__(self, max_entries: int = 32,
                 max_bytes: int = 768 << 20):
        self._lru = LRUCache(max_entries=max_entries, max_bytes=max_bytes)
        self.max_entries = self._lru.max_entries
        self.max_bytes = self._lru.max_bytes

    @staticmethod
    def digest(*parts) -> bytes:
        """Cheap content digest of arrays / scalars for cache keys."""
        h = hashlib.blake2b(digest_size=16)
        for part in parts:
            if isinstance(part, np.ndarray):
                arr = np.ascontiguousarray(part)
                h.update(repr((arr.dtype.str, arr.shape)).encode())
                h.update(arr.view(np.uint8).reshape(-1).data)
            else:
                h.update(repr(part).encode())
        return h.digest()

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    def get(self, key: Tuple, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building (and caching)
        it on a miss.  Builds run under the cache lock so concurrent
        windows sharing one table wait for a single build instead of
        duplicating it."""
        return self._lru.get_or_build(key, build, nbytes=_value_nbytes)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters survive for tests)."""
        self._lru.clear()

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)


#: the process-wide cache every endpoint defaults to
_PROCESS_CACHE = TableCache()


def get_table_cache() -> TableCache:
    """The process-wide :class:`TableCache` (shared across windows,
    shards and engine worker threads)."""
    return _PROCESS_CACHE


# ----------------------------------------------------------------------
# trans coding tables
# ----------------------------------------------------------------------
class TransTables(NamedTuple):
    """Derived coding state for one cumulative table.

    ``scaled`` is the ``(n_contexts, alphabet + 1)`` cumulative table
    rescaled so every row totals ``1 << precision``; the three flat
    LUTs are indexed by ``(context << precision) | slot``.
    """

    precision: int
    scaled: np.ndarray    # (n_ctx, width) uint64 rescaled cumulative
    sym: np.ndarray       # flat (n_ctx << p,) u16/u32 slot -> symbol
    freq: np.ndarray      # flat (n_ctx << p,) u32 slot -> frequency
    bias: np.ndarray      # flat (n_ctx << p,) u32 slot -> slot - cum_lo


def build_trans_tables(cumulative: np.ndarray) -> TransTables:
    """Rescale a cumulative table to a shared power-of-two total and
    build the slot LUTs (vectorized ``np.repeat`` over the rescaled
    frequencies).

    Rows must start at zero and be monotone; every row with positive
    total covers all ``2^precision`` slots exactly after the rescale,
    which is what makes the masked decode slot structurally in-range.
    Degenerate all-zero rows (a total of zero) are tolerated — they
    are unusable, so their slots carry zero frequencies and any stream
    that claims them collapses into the strict decode checks instead
    of decoding garbage.
    """
    cum = np.ascontiguousarray(np.asarray(cumulative, dtype=np.int64))
    if cum.ndim != 2 or cum.shape[1] < 2:
        raise ValueError(f"cumulative table must be (n_contexts, "
                         f"alphabet + 1), got shape {cum.shape}")
    n_ctx, width = cum.shape
    alphabet = width - 1
    totals = cum[:, -1]
    if int(totals.max(initial=0)) > MAX_TOTAL:
        raise ValueError(f"total {int(totals.max())} exceeds MAX_TOTAL "
                         f"{MAX_TOTAL}")
    if np.any(cum[:, 0] != 0):
        raise ValueError("cumulative rows must start at 0")
    if np.any(np.diff(cum, axis=1) < 0):
        raise ValueError("cumulative rows must be monotone")
    # smallest p with 2^p >= every row total (0 for the trivial
    # all-ones table: a one-slot LUT per row)
    precision = (max(1, int(totals.max(initial=1))) - 1).bit_length()
    size = 1 << precision
    degenerate = totals <= 0
    safe_totals = np.where(degenerate, 1, totals)
    scaled = cum * size // safe_totals[:, None]
    freqs = np.diff(scaled, axis=1)
    # repeat lengths must sum to ``size`` per row; give degenerate rows
    # a placeholder full-range run (zeroed below, so decode stays strict)
    if degenerate.any():
        freqs = freqs.copy()
        freqs[degenerate] = 0
        freqs[degenerate, 0] = size
    sym_dtype = np.uint16 if alphabet <= 0xFFFF else np.uint32
    reps = freqs.ravel()
    sym = np.repeat(np.tile(np.arange(alphabet, dtype=sym_dtype), n_ctx),
                    reps)
    freq = np.repeat(freqs.ravel().astype(np.uint32), reps)
    lo = np.repeat(scaled[:, :-1].ravel().astype(np.uint32), reps)
    bias = np.tile(np.arange(size, dtype=np.uint32), n_ctx) - lo
    if degenerate.any():
        flat = np.repeat(degenerate, size)
        freq[flat] = 0
        bias[flat] = 0
    for arr in (sym, freq, bias):
        arr.setflags(write=False)
    scaled = scaled.astype(np.uint64)
    scaled.setflags(write=False)
    return TransTables(precision=precision, scaled=scaled, sym=sym,
                       freq=freq, bias=bias)


def _tables_for(cumulative: np.ndarray,
                cache: Optional[TableCache]) -> TransTables:
    cache = cache if cache is not None else _PROCESS_CACHE
    key = ("trans", TableCache.digest(np.asarray(cumulative)))
    return cache.get(key, lambda: build_trans_tables(cumulative))


# ----------------------------------------------------------------------
# coding
# ----------------------------------------------------------------------
def encode_symbols_trans(symbols: np.ndarray, cumulative: np.ndarray,
                         contexts: np.ndarray,
                         lanes: Optional[int] = None,
                         cache: Optional[TableCache] = None) -> bytes:
    """Interleaved-rANS encode under the cached shared-precision tables.

    Drop-in equivalent of :func:`repro.entropy.coder.encode_symbols`;
    ``lanes`` overrides the automatic width (the decoder reads it from
    the stream header), ``cache`` overrides the process
    :class:`TableCache`.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    if symbols.shape != contexts.shape:
        raise ValueError("symbols and contexts must have equal length")
    check_contexts(contexts, np.asarray(cumulative).shape[0])
    alphabet = np.asarray(cumulative).shape[1] - 1
    if symbols.size and (symbols.min() < 0 or symbols.max() >= alphabet):
        raise ValueError(
            f"symbol out of range [0, {alphabet}): "
            f"[{symbols.min()}, {symbols.max()}]")
    n = symbols.size
    L = lane_count(n) if lanes is None else int(lanes)
    if not 1 <= L <= MAX_LANES:
        raise ValueError(f"lane count must be in [1, {MAX_LANES}], "
                         f"got {L}")
    states = np.full(L, _STATE_L, dtype=np.uint64)
    if n == 0:
        return struct.pack("<B", L) + states.astype("<u8").tobytes()

    t = _tables_for(cumulative, cache)
    p = np.uint64(t.precision)
    lo = t.scaled[contexts, symbols]
    hi = t.scaled[contexts, symbols + 1]
    if np.any(hi <= lo):
        raise ValueError("zero-frequency symbol is not encodable")
    freq = hi - lo
    # per-symbol renorm thresholds, hoisted out of the step loop
    # (uniform total: x_max = (2^63 >> p) * freq)
    x_max = (_X_MAX_NUM >> p) * freq

    emitted = []  # chronological chunks of renormalization words
    n_steps = -(-n // L)
    # LIFO: walk steps in reverse; the partial step (if any) comes
    # first and touches only the leading ``n - (n_steps-1)*L`` lanes.
    for step in range(n_steps - 1, -1, -1):
        a = step * L
        k = min(L, n - a)
        f = freq[a:a + k]
        x = states[:k]
        m = x >= x_max[a:a + k]
        if m.any():
            # ascending lane order within the step (np.nonzero order);
            # the whole sequence is reversed below, so the decoder
            # consumes descending-lane words while walking forward
            emitted.append((x[m] & _WORD_MASK).astype("<u4"))
            x = np.where(m, x >> _WORD_BITS, x)
        q, r = np.divmod(x, f)
        states[:k] = (q << p) + lo[a:a + k] + r

    if emitted:
        words = np.ascontiguousarray(np.concatenate(emitted)[::-1])
    else:
        words = np.zeros(0, dtype="<u4")
    return (struct.pack("<B", L) + states.astype("<u8").tobytes()
            + words.tobytes())


def decode_symbols_trans(data: bytes, cumulative: np.ndarray,
                         contexts: np.ndarray,
                         cache: Optional[TableCache] = None) -> np.ndarray:
    """Inverse of :func:`encode_symbols_trans` (same contexts required).

    Every lane's symbol resolves with one LUT gather — no searchsorted,
    no per-row-total slow path.  Strict: truncated streams, leftover
    words, and lanes that fail to return to the initial rANS state all
    raise :class:`~repro.entropy.coder.EntropyDecodeError`; masked
    slots are structurally in-range because the LUT build proves full
    slot coverage per row.
    """
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    check_contexts(contexts, np.asarray(cumulative).shape[0])
    data = bytes(data)
    if len(data) < 1:
        raise EntropyDecodeError("corrupted trans stream: empty")
    L = data[0]
    if L < 1:
        raise EntropyDecodeError("corrupted trans stream: bad lane count")
    body = len(data) - 1 - 8 * L
    if body < 0 or body % 4:
        raise EntropyDecodeError("corrupted trans stream: truncated")
    states = np.frombuffer(data, dtype="<u8", count=L,
                           offset=1).astype(np.uint64)
    words = np.frombuffer(data, dtype="<u4",
                          offset=1 + 8 * L).astype(np.uint64)

    n = contexts.size
    out = np.empty(n, dtype=np.int64)
    if n:
        t = _tables_for(cumulative, cache)
        p = np.uint64(t.precision)
        mask = np.uint64((1 << t.precision) - 1)
        sym_lut, freq_lut, bias_lut = t.sym, t.freq, t.bias
        # flat LUT base index per symbol, hoisted out of the step loop
        j_base = contexts.astype(np.uint64) << p
        wpos = 0
        n_steps = -(-n // L)
        for step in range(n_steps):
            a = step * L
            k = min(L, n - a)
            x = states[:k]
            j = j_base[a:a + k] + (x & mask)
            out[a:a + k] = sym_lut[j]
            x = freq_lut[j] * (x >> p) + bias_lut[j]
            m = x < _STATE_L
            cnt = int(m.sum())
            if cnt:
                if wpos + cnt > words.size:
                    raise EntropyDecodeError(
                        "corrupted trans stream: out of words")
                lanes_idx = np.nonzero(m)[0][::-1]  # descending lanes
                x[lanes_idx] = ((x[lanes_idx] << _WORD_BITS)
                                | words[wpos:wpos + cnt])
                wpos += cnt
            states[:k] = x
    else:
        wpos = 0

    if wpos != words.size:
        raise EntropyDecodeError(f"corrupted trans stream: "
                                 f"{words.size - wpos} unconsumed words")
    if not np.all(states == _STATE_L):
        raise EntropyDecodeError(
            "corrupted trans stream: decoder did not return to the "
            "initial state")
    return out
