"""Bit-level I/O used by the arithmetic coder."""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates single bits MSB-first into a byte buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._current = 0
        self._nbits = 0

    def write(self, bit: int) -> None:
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._buf.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_run(self, bit: int, count: int) -> None:
        """Write ``count`` copies of ``bit``.

        Runs covering whole bytes are appended as bytes instead of
        single bits — the arithmetic coder's pending-carry runs are
        adversarially long (one per renormalization), and emitting them
        bitwise is worst-case quadratic.  Output is byte-identical to
        ``count`` repeated :meth:`write` calls.
        """
        bit &= 1
        if count <= 0:
            return
        if self._nbits:  # top up the current partial byte first
            take = min(count, 8 - self._nbits)
            for _ in range(take):
                self.write(bit)
            count -= take
        nbytes, count = divmod(count, 8)
        if nbytes:
            self._buf += (b"\xff" if bit else b"\x00") * nbytes
        for _ in range(count):
            self.write(bit)

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final partial byte) and return bytes."""
        if self._nbits:
            tail = self._current << (8 - self._nbits)
            return bytes(self._buf) + bytes([tail])
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf) * 8 + self._nbits


class BitReader:
    """Reads single bits MSB-first; yields 0 past the end of data.

    The trailing-zeros convention matches the arithmetic decoder, which
    may read a handful of bits beyond the encoded payload while
    resolving its final symbols.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._current = 0
        self._nbits = 0

    def read(self) -> int:
        if self._nbits == 0:
            if self._pos < len(self._data):
                self._current = self._data[self._pos]
                self._pos += 1
            else:
                self._current = 0
            self._nbits = 8
        self._nbits -= 1
        return (self._current >> self._nbits) & 1
