"""``repro.entropy`` — lossless entropy-coding substrate.

Implements the pieces the paper's rate model relies on (Sec. 3.1):

* a binary arithmetic coder (:mod:`repro.entropy.rangecoder`) standing
  in for the reference "arithmetic coding [33]";
* the non-parametric fully factorized density of Ballé et al. for the
  hyper-latent ``z`` (:mod:`repro.entropy.factorized`);
* the Gaussian conditional model ``p(y | mu, sigma)`` of Eq. 1–2
  (:mod:`repro.entropy.gaussian`);
* symbol-stream helpers tying models to the coder
  (:mod:`repro.entropy.coder`);
* an alternative scalar rANS backend with the same table interface
  (:mod:`repro.entropy.rans`);
* a lane-vectorized interleaved rANS backend — the fast path
  (:mod:`repro.entropy.vrans`);
* a table-cached LUT rANS backend — fast path round 2, with O(1)
  symbol decode and a process-wide :class:`TableCache` that reuses
  rescale/LUT work across windows (:mod:`repro.entropy.tablecoder`);
* the pluggable backend registry tying them together
  (:mod:`repro.entropy.backend`): ``get_backend("arithmetic" | "rans"
  | "vrans" | "trans")``, one-byte wire tags for container headers,
  and a process-wide default that ``Session(entropy_backend=...)``
  scopes.

Strict decoders raise :class:`EntropyDecodeError` (a ``ValueError``)
on corrupted streams instead of returning garbage.
"""

from .backend import (DEFAULT_BACKEND, LEGACY_TAG, EntropyBackend,
                      backend_from_tag, get_backend,
                      get_default_backend, list_backends,
                      register_backend, set_default_backend,
                      using_backend)
from .coder import (EntropyDecodeError, check_contexts, decode_symbols,
                    encode_symbols)
from .factorized import FactorizedDensity
from .gaussian import (SCALE_MIN, GaussianConditional, gaussian_likelihood,
                       build_scale_table)
from .rangecoder import ArithmeticDecoder, ArithmeticEncoder
from .rans import (RansDecoder, RansEncoder, decode_symbols_rans,
                   encode_symbols_rans)
from .tablecoder import (TableCache, decode_symbols_trans,
                         encode_symbols_trans, get_table_cache)
from .vrans import decode_symbols_vrans, encode_symbols_vrans
from .bitio import BitReader, BitWriter

__all__ = [
    "ArithmeticEncoder", "ArithmeticDecoder", "BitReader", "BitWriter",
    "FactorizedDensity", "GaussianConditional", "gaussian_likelihood",
    "build_scale_table", "SCALE_MIN", "encode_symbols", "decode_symbols",
    "check_contexts", "RansEncoder", "RansDecoder", "encode_symbols_rans",
    "decode_symbols_rans", "encode_symbols_vrans", "decode_symbols_vrans",
    "encode_symbols_trans", "decode_symbols_trans", "TableCache",
    "get_table_cache", "EntropyDecodeError",
    "EntropyBackend", "get_backend", "backend_from_tag", "list_backends",
    "register_backend", "get_default_backend", "set_default_backend",
    "using_backend", "DEFAULT_BACKEND", "LEGACY_TAG",
]
