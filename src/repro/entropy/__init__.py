"""``repro.entropy`` — lossless entropy-coding substrate.

Implements the pieces the paper's rate model relies on (Sec. 3.1):

* a binary arithmetic coder (:mod:`repro.entropy.rangecoder`) standing
  in for the reference "arithmetic coding [33]";
* the non-parametric fully factorized density of Ballé et al. for the
  hyper-latent ``z`` (:mod:`repro.entropy.factorized`);
* the Gaussian conditional model ``p(y | mu, sigma)`` of Eq. 1–2
  (:mod:`repro.entropy.gaussian`);
* symbol-stream helpers tying models to the coder
  (:mod:`repro.entropy.coder`);
* an alternative rANS backend with the same table interface
  (:mod:`repro.entropy.rans`).
"""

from .coder import decode_symbols, encode_symbols
from .factorized import FactorizedDensity
from .gaussian import (SCALE_MIN, GaussianConditional, gaussian_likelihood,
                       build_scale_table)
from .rangecoder import ArithmeticDecoder, ArithmeticEncoder
from .rans import (RansDecoder, RansEncoder, decode_symbols_rans,
                   encode_symbols_rans)
from .bitio import BitReader, BitWriter

__all__ = [
    "ArithmeticEncoder", "ArithmeticDecoder", "BitReader", "BitWriter",
    "FactorizedDensity", "GaussianConditional", "gaussian_likelihood",
    "build_scale_table", "SCALE_MIN", "encode_symbols", "decode_symbols",
    "RansEncoder", "RansDecoder", "encode_symbols_rans",
    "decode_symbols_rans",
]
