"""Vectorized N-lane interleaved rANS entropy coder.

The scalar coders in :mod:`repro.entropy.coder` and
:mod:`repro.entropy.rans` spend almost all of their time in a
per-symbol Python loop — the dominant cost of every compress and
decompress in this repo.  This module removes that loop: ``N``
independent rANS states (*lanes*) advance together as numpy vectors,
one *step* (= one symbol per lane) at a time, so the Python-level trip
count drops from ``n_symbols`` to ``ceil(n_symbols / lanes)`` and each
trip is a handful of vectorized gathers, divisions and masked stores.

Layout and invariants
---------------------
Symbol ``i`` belongs to lane ``i % lanes`` at step ``i // lanes``.
Each lane is a standard 64-bit-state / 32-bit-word rANS coder with the
same b-uniqueness treatment as :mod:`repro.entropy.rans`: frequency
totals are rescaled to the next power of two (identity for power-of-two
tables), which keeps every state in ``[RANS_L, 2^63)`` and guarantees
**at most one** renormalization word per push/pop — the property that
makes the per-step emit/refill a single boolean mask instead of a
``while`` loop.

Encoding walks the steps in reverse (rANS is last-in-first-out),
emitting renormalization words in ascending lane order within a step;
the finished word sequence is reversed, so the decoder — walking steps
forward — refills lanes in descending lane order while consuming the
words left to right.

Stream layout: ``u8 lane count | lanes x u64 final states (LE) |
u32 words (LE)``.  Decoding is strict: leftover words, missing words,
lanes that do not return to the initial state, or slots that fall
outside their cumulative row all raise
:class:`~repro.entropy.coder.EntropyDecodeError` (a ``ValueError``)
instead of decoding garbage.

The symbol lookup on the decode side is vectorized too: when every
context row shares one frequency total (true for every table
:func:`repro.entropy.coder.pmf_to_cumulative` builds), the rows are
flattened into one monotone key array and a single
``np.searchsorted`` resolves a whole step of slots; tables with mixed
per-row totals fall back to a masked comparison over the gathered rows.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from .coder import EntropyDecodeError, check_contexts
from .rangecoder import MAX_TOTAL
from .rans import RANS_L

__all__ = ["encode_symbols_vrans", "decode_symbols_vrans", "lane_count",
           "MAX_LANES"]

#: Largest storable lane count (the header field is one byte).
MAX_LANES = 255

_STATE_L = np.uint64(RANS_L)
_WORD_BITS = np.uint64(32)
_WORD_MASK = np.uint64(0xFFFFFFFF)
#: Numerator of the renormalization threshold: ``b * RANS_L = 2^63``.
_X_MAX_NUM = np.uint64((1 << 32) * RANS_L)
_ONE = np.uint64(1)


def lane_count(n: int) -> int:
    """Deterministic lane width for an ``n``-symbol stream.

    Scales with the stream so the ``lanes * 8``-byte state header
    stays a bounded fraction (~6%) of even small payloads, while real
    streams reach the full 64 lanes that amortize the per-step numpy
    dispatch.
    """
    return max(1, min(64, n // 128))


def _pow2_vec(total: np.ndarray) -> np.ndarray:
    """Elementwise smallest power of two ``>= total`` (uint64 in,
    totals ``<= 2^16`` — bit-smearing, exact where float log2 is not)."""
    v = total - _ONE
    for shift in (1, 2, 4, 8, 16):
        v = v | (v >> np.uint64(shift))
    return v + _ONE


def _gather_triples(symbols: np.ndarray, cumulative: np.ndarray,
                    contexts: np.ndarray):
    """``(cum_lo, cum_hi, total)`` per symbol, rescaled to power-of-two
    totals (the vectorized twin of ``RansEncoder.push``'s preamble)."""
    lo = cumulative[contexts, symbols].astype(np.uint64)
    hi = cumulative[contexts, symbols + 1].astype(np.uint64)
    tot = cumulative[contexts, -1].astype(np.uint64)
    if tot.size and int(tot.max()) > MAX_TOTAL:
        raise ValueError(
            f"total {int(tot.max())} exceeds MAX_TOTAL {MAX_TOTAL}")
    if np.any(hi <= lo):
        raise ValueError("zero-frequency symbol is not encodable")
    scaled = _pow2_vec(tot)
    need = scaled != tot
    if np.any(need):
        lo = np.where(need, lo * scaled // tot, lo)
        hi = np.where(need, hi * scaled // tot, hi)
        tot = scaled
    return lo, hi, tot


def encode_symbols_vrans(symbols: np.ndarray, cumulative: np.ndarray,
                         contexts: np.ndarray,
                         lanes: Optional[int] = None) -> bytes:
    """Interleaved-rANS encode ``symbols[i]`` under
    ``cumulative[contexts[i]]``.

    Drop-in equivalent of :func:`repro.entropy.coder.encode_symbols`
    with lane-vectorized state updates.  ``lanes`` overrides the
    automatic width (the decoder reads it from the stream header).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    if symbols.shape != contexts.shape:
        raise ValueError("symbols and contexts must have equal length")
    check_contexts(contexts, cumulative.shape[0])
    alphabet = cumulative.shape[1] - 1
    if symbols.size and (symbols.min() < 0 or symbols.max() >= alphabet):
        raise ValueError(
            f"symbol out of range [0, {alphabet}): "
            f"[{symbols.min()}, {symbols.max()}]")
    n = symbols.size
    L = lane_count(n) if lanes is None else int(lanes)
    if not 1 <= L <= MAX_LANES:
        raise ValueError(f"lane count must be in [1, {MAX_LANES}], "
                         f"got {L}")
    lo, hi, tot = _gather_triples(symbols, np.ascontiguousarray(cumulative),
                                  contexts)
    freq = hi - lo

    states = np.full(L, _STATE_L, dtype=np.uint64)
    emitted = []  # chronological chunks of renormalization words
    n_steps = -(-n // L)
    # LIFO: walk steps in reverse; the partial step (if any) comes
    # first and touches only the leading ``n - (n_steps-1)*L`` lanes.
    for t in range(n_steps - 1, -1, -1):
        a = t * L
        k = min(L, n - a)
        f = freq[a:a + k]
        tt = tot[a:a + k]
        ll = lo[a:a + k]
        x = states[:k]
        x_max = (_X_MAX_NUM // tt) * f
        m = x >= x_max
        if m.any():
            # ascending lane order within the step (np.nonzero order);
            # the whole sequence is reversed below, so the decoder
            # consumes descending-lane words while walking forward
            emitted.append((x[m] & _WORD_MASK).astype("<u4"))
            x = np.where(m, x >> _WORD_BITS, x)
        states[:k] = (x // f) * tt + ll + (x % f)

    if emitted:
        words = np.ascontiguousarray(np.concatenate(emitted)[::-1])
    else:
        words = np.zeros(0, dtype="<u4")
    return (struct.pack("<B", L) + states.astype("<u8").tobytes()
            + words.tobytes())


def decode_symbols_vrans(data: bytes, cumulative: np.ndarray,
                         contexts: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_symbols_vrans` (same contexts required).

    Strict: raises :class:`~repro.entropy.coder.EntropyDecodeError` on
    truncated streams, trailing words, out-of-range decoded slots, or
    lanes that fail to return to the initial rANS state.
    """
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    check_contexts(contexts, cumulative.shape[0])
    data = bytes(data)
    if len(data) < 1:
        raise EntropyDecodeError("corrupted vrans stream: empty")
    L = data[0]
    if L < 1:
        raise EntropyDecodeError("corrupted vrans stream: bad lane count")
    body = len(data) - 1 - 8 * L
    if body < 0 or body % 4:
        raise EntropyDecodeError("corrupted vrans stream: truncated")
    states = np.frombuffer(data, dtype="<u8", count=L,
                           offset=1).astype(np.uint64)
    words = np.frombuffer(data, dtype="<u4",
                          offset=1 + 8 * L).astype(np.uint64)

    n = contexts.size
    cumulative = np.ascontiguousarray(cumulative)
    n_ctx, width = cumulative.shape
    tot_all = cumulative[contexts, -1].astype(np.uint64)
    if n and int(tot_all.max()) > MAX_TOTAL:
        raise ValueError(
            f"total {int(tot_all.max())} exceeds MAX_TOTAL {MAX_TOTAL}")
    scaled_all = _pow2_vec(tot_all)

    # Shared-total tables (everything pmf_to_cumulative builds) get a
    # single monotone key array: row c occupies [c*stride, c*stride +
    # total], so one searchsorted resolves a whole step of slots.
    totals = cumulative[:, -1]
    uniform = n_ctx > 0 and int(totals.min()) == int(totals.max())
    if uniform:
        stride = int(totals[0]) + 1
        flat = (cumulative.astype(np.int64)
                + np.arange(n_ctx, dtype=np.int64)[:, None] * stride
                ).ravel()

    out = np.empty(n, dtype=np.int64)
    wpos = 0
    n_steps = -(-n // L)
    for t in range(n_steps):
        a = t * L
        k = min(L, n - a)
        ctx = contexts[a:a + k]
        tt = tot_all[a:a + k]
        sc = scaled_all[a:a + k]
        x = states[:k]
        slot = x % sc
        rescaled = sc != tt
        # inverse of the encoder's boundary map c -> c*scaled//total
        slot_sym = np.where(rescaled,
                            ((slot + _ONE) * tt - _ONE) // sc,
                            slot).astype(np.int64)
        if uniform:
            p = np.searchsorted(flat, ctx * stride + slot_sym,
                                side="right") - 1
            s = p - ctx * width
        else:
            rows = cumulative[ctx]
            s = (rows <= slot_sym[:, None]).sum(axis=1) - 1
            # A corrupted stream (or a table violating the row
            # contract) can place the slot below ``row[0]`` or past the
            # last boundary, yielding s == -1 or s == alphabet; fancy-
            # indexing ``cumulative[ctx, s + 1]`` with those would wrap
            # (or step out of the row) and decode garbage.
            if s.size and (int(s.min()) < 0 or int(s.max()) >= width - 1):
                raise EntropyDecodeError(
                    "corrupted vrans stream: decoded slot outside the "
                    "cumulative table range")
        out[a:a + k] = s
        lo = cumulative[ctx, s].astype(np.uint64)
        hi = cumulative[ctx, s + 1].astype(np.uint64)
        if rescaled.any():
            lo = np.where(rescaled, lo * sc // tt, lo)
            hi = np.where(rescaled, hi * sc // tt, hi)
        x = (hi - lo) * (x // sc) + slot - lo
        m = x < _STATE_L
        cnt = int(m.sum())
        if cnt:
            if wpos + cnt > words.size:
                raise EntropyDecodeError(
                    "corrupted vrans stream: out of words")
            lanes_idx = np.nonzero(m)[0][::-1]  # descending lane order
            x[lanes_idx] = ((x[lanes_idx] << _WORD_BITS)
                            | words[wpos:wpos + cnt])
            wpos += cnt
        states[:k] = x

    if wpos != words.size:
        raise EntropyDecodeError(f"corrupted vrans stream: "
                                 f"{words.size - wpos} unconsumed words")
    if not np.all(states == _STATE_L):
        raise EntropyDecodeError(
            "corrupted vrans stream: decoder did not return to the "
            "initial state")
    return out
