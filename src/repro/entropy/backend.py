"""Pluggable entropy-coder backends behind one table interface.

Every compressed stream in this repo — factorized hyperprior,
Gaussian-conditional latents, PCA-correction coefficients — reduces to
the same contract: integer symbols coded under per-context cumulative
frequency tables ``(n_contexts, alphabet + 1)``.  This module makes
the coder behind that contract a named, tagged strategy:

``arithmetic``
    The Witten–Neal–Cleary coder (:mod:`repro.entropy.coder`).  The
    historical default: every stream written before backends existed
    is an arithmetic stream, so *untagged* data always decodes through
    it, bit-identically.
``rans``
    Scalar rANS (:mod:`repro.entropy.rans`).  Same compressed size to
    within a fraction of a bit, LIFO symbol order, strict
    end-of-stream verification.
``vrans``
    N-lane interleaved rANS with numpy lane-vectorized state updates
    (:mod:`repro.entropy.vrans`) — the first fast path; the per-symbol
    Python loop of the other two is the dominant cost of every
    compress/decompress in the repo.
``trans``
    Table-cached LUT rANS (:mod:`repro.entropy.tablecoder`) — fast
    path round 2: per-context slot→symbol lookup tables give O(1)
    symbol decode (no searchsorted, no mixed-total slow path), and a
    process-wide :class:`~repro.entropy.tablecoder.TableCache` reuses
    the rescale/LUT build across the many windows of a stream.

Each backend owns a one-byte wire ``tag`` (> 0) that containers store
in their stream headers so decoders self-select; tag ``0`` is reserved
for untagged legacy streams and resolves to ``arithmetic``.  The
module-level *default* backend is what encoders use when no explicit
choice is passed — ``Session(entropy_backend=...)`` and the CLI's
``--entropy-backend`` flag scope it with :func:`using_backend`, and
process-pool workers receive it per job, so sweeps stay byte-identical
across executors.

Adding a coder (t-ANS variants, GPU backends) means subclassing
:class:`EntropyBackend`, picking an unused tag, and calling
:func:`register_backend`; everything above the entropy layer picks it
up by name.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Union

import numpy as np

from . import coder as _coder
from . import rans as _rans
from . import tablecoder as _tablecoder
from . import vrans as _vrans

__all__ = ["EntropyBackend", "register_backend", "get_backend",
           "backend_from_tag", "list_backends", "DEFAULT_BACKEND",
           "LEGACY_TAG", "get_default_backend", "set_default_backend",
           "using_backend"]

#: The backend every pre-tag stream was written with; untagged data
#: always decodes through it.
DEFAULT_BACKEND = "arithmetic"

#: Wire tag of untagged legacy streams (resolves to ``arithmetic``).
LEGACY_TAG = 0


class EntropyBackend:
    """One symbol-stream coder behind the shared table contract.

    Subclasses set ``name`` (registry key) and ``tag`` (one wire byte,
    1–255) and implement ``encode`` / ``decode`` over
    ``(symbols, cumulative, contexts)`` exactly like
    :func:`repro.entropy.coder.encode_symbols`.
    """

    name: str = "abstract"
    tag: int = -1

    def encode(self, symbols: np.ndarray, cumulative: np.ndarray,
               contexts: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, cumulative: np.ndarray,
               contexts: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EntropyBackend {self.name!r} tag={self.tag}>"


class ArithmeticBackend(EntropyBackend):
    """Arithmetic coding — the byte-compatible legacy default."""

    name = "arithmetic"
    tag = 1

    def encode(self, symbols, cumulative, contexts):
        return _coder.encode_symbols(symbols, cumulative, contexts)

    def decode(self, data, cumulative, contexts):
        return _coder.decode_symbols(data, cumulative, contexts)


class RansBackend(EntropyBackend):
    """Scalar rANS with strict end-of-stream verification."""

    name = "rans"
    tag = 2

    def encode(self, symbols, cumulative, contexts):
        return _rans.encode_symbols_rans(symbols, cumulative, contexts)

    def decode(self, data, cumulative, contexts):
        return _rans.decode_symbols_rans(data, cumulative, contexts)


class VransBackend(EntropyBackend):
    """Lane-vectorized interleaved rANS — the fast path."""

    name = "vrans"
    tag = 3

    def encode(self, symbols, cumulative, contexts):
        return _vrans.encode_symbols_vrans(symbols, cumulative, contexts)

    def decode(self, data, cumulative, contexts):
        return _vrans.decode_symbols_vrans(data, cumulative, contexts)


class TransBackend(EntropyBackend):
    """Table-cached LUT rANS — O(1) symbol decode, cross-window
    table reuse."""

    name = "trans"
    tag = 4

    def encode(self, symbols, cumulative, contexts):
        return _tablecoder.encode_symbols_trans(symbols, cumulative,
                                                contexts)

    def decode(self, data, cumulative, contexts):
        return _tablecoder.decode_symbols_trans(data, cumulative,
                                                contexts)


_BACKENDS: Dict[str, EntropyBackend] = {}
_BY_TAG: Dict[int, EntropyBackend] = {}


def register_backend(backend: EntropyBackend) -> EntropyBackend:
    """Register a backend instance under its ``name`` and ``tag``."""
    if not backend.name or backend.name == "abstract":
        raise ValueError("backend needs a concrete name")
    if not 1 <= backend.tag <= 255:
        raise ValueError(f"backend tag must be one byte in [1, 255], "
                         f"got {backend.tag}")
    existing = _BACKENDS.get(backend.name)
    if existing is not None and type(existing) is not type(backend):
        raise ValueError(f"backend name {backend.name!r} already taken")
    tagged = _BY_TAG.get(backend.tag)
    if tagged is not None and tagged.name != backend.name:
        raise ValueError(f"backend tag {backend.tag} already taken by "
                         f"{tagged.name!r}")
    _BACKENDS[backend.name] = backend
    _BY_TAG[backend.tag] = backend
    return backend


def list_backends() -> List[str]:
    """Sorted names of every registered entropy backend."""
    return sorted(_BACKENDS)


def get_backend(backend: Union[str, EntropyBackend, None] = None
                ) -> EntropyBackend:
    """Resolve a backend: a name, an instance, or ``None`` (the
    current default)."""
    if backend is None:
        return _BACKENDS[_default_name]
    if isinstance(backend, EntropyBackend):
        return backend
    key = str(backend).strip().lower()
    resolved = _BACKENDS.get(key)
    if resolved is None:
        known = ", ".join(list_backends())
        raise KeyError(f"unknown entropy backend {backend!r}; "
                       f"registered: {known}")
    return resolved


def backend_from_tag(tag: int) -> EntropyBackend:
    """Resolve a wire tag; ``LEGACY_TAG`` (0) means untagged legacy
    data and resolves to the arithmetic default."""
    if tag == LEGACY_TAG:
        return _BACKENDS[DEFAULT_BACKEND]
    resolved = _BY_TAG.get(tag)
    if resolved is None:
        known = ", ".join(f"{b.tag}={b.name}"
                          for b in _BY_TAG.values())
        raise ValueError(f"unknown entropy-backend tag {tag}; "
                         f"known: 0=legacy/{DEFAULT_BACKEND}, {known}")
    return resolved


register_backend(ArithmeticBackend())
register_backend(RansBackend())
register_backend(VransBackend())
register_backend(TransBackend())

#: Process-wide default state.  Deliberately process-global (not
#: thread-local): the engine's and multivar's thread pools must see
#: the selection made by the driving thread.  ``_base_name`` is the
#: default outside every :func:`using_backend` scope; ``_scopes``
#: reference-counts the active scope values so concurrent same-name
#: scopes (one per engine window job) enter and exit in any order
#: without restoring stale state or leaking their value after the
#: last exit.
_state_lock = threading.Lock()
_base_name = DEFAULT_BACKEND
_scopes: Counter = Counter()
_default_name = DEFAULT_BACKEND


def _recompute_default() -> None:
    """Resolve the current default from base + active scopes.

    Caller holds ``_state_lock``.  With scopes of exactly one name
    active, that name wins; with none, the base does.  Two *distinct*
    names concurrently active is an application race (two sessions
    with different backends sharing one process) — the most recently
    entered scope stays in effect until the ambiguity resolves.
    """
    global _default_name
    if len(_scopes) == 1:
        _default_name = next(iter(_scopes))
    elif not _scopes:
        _default_name = _base_name


def get_default_backend() -> EntropyBackend:
    """The backend encoders use when none is passed explicitly."""
    return _BACKENDS[_default_name]


def set_default_backend(backend: Union[str, EntropyBackend, None]
                        ) -> str:
    """Set the process-wide base default; returns the previous name
    (``None`` resets to ``arithmetic``).  Scopes opened by
    :func:`using_backend` take precedence while active."""
    global _base_name
    name = (DEFAULT_BACKEND if backend is None
            else get_backend(backend).name)
    with _state_lock:
        previous = _base_name
        _base_name = name
        _recompute_default()
    return previous


@contextmanager
def using_backend(backend: Union[str, EntropyBackend, None]
                  ) -> Iterator[EntropyBackend]:
    """Scope the default backend; ``None`` leaves it untouched.

    This is how :class:`repro.api.Session` threads
    ``entropy_backend=...`` through codec code that never heard of
    backends (every baseline funnels through
    :func:`repro.postprocess.coding.encode_ints`).  Scopes are
    reference-counted, so the engine's thread pools may hold one scope
    per concurrent window job (same name) and exit them in any order.
    """
    if backend is None:
        yield get_default_backend()
        return
    global _default_name
    name = get_backend(backend).name
    with _state_lock:
        _scopes[name] += 1
        _default_name = name  # most recent entry wins immediately
    try:
        yield _BACKENDS[name]
    finally:
        with _state_lock:
            _scopes[name] -= 1
            if not _scopes[name]:
                del _scopes[name]
            _recompute_default()
