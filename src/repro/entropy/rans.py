"""rANS entropy coder (range asymmetric numeral system).

An alternative lossless backend with the same symbol-model interface
as :mod:`repro.entropy.coder`: per-context cumulative-frequency tables
``(n_contexts, alphabet + 1)``.  rANS reaches the same compressed size
as arithmetic coding (both are within a fraction of a bit of the
entropy) but encodes **last-in-first-out**: symbols are pushed onto a
single integer state in reverse order and popped forward — which is
why modern codecs favour it (the decoder is branch-light and
table-driven).  The ablation bench ``bench_ablation_entropy`` compares
the two backends on identical streams.

State layout: 64-bit state, 32-bit word renormalization
(``ryg_rans``-style), arbitrary frequency totals up to
:data:`repro.entropy.rangecoder.MAX_TOTAL`.

Streaming rANS renormalization is only exactly invertible when the
frequency total divides the interval bound ``RANS_L`` (Duda's
b-uniqueness condition) — with an arbitrary total the truncated
``x_max`` lets a push land just below ``RANS_L`` and the decoder
over-refills.  Both endpoints therefore rescale non-power-of-two
totals to the next power of two (a deterministic, partition-preserving
map both sides derive from the same ``(cum_lo, cum_hi, total)``
arguments); power-of-two tables — including everything
:func:`repro.entropy.coder.pmf_to_cumulative` produces — pass through
untouched, so existing streams decode bit-identically.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from .coder import check_contexts
from .rangecoder import MAX_TOTAL

__all__ = ["RansEncoder", "RansDecoder", "encode_symbols_rans",
           "decode_symbols_rans", "RANS_L"]

#: Lower bound of the normalized state interval ``[RANS_L, 2^64)``.
RANS_L = 1 << 31
_WORD = 1 << 32


def _pow2_total(total: int) -> int:
    """Smallest power of two >= ``total`` (identity for powers of two)."""
    return 1 << (total - 1).bit_length()


def _rescale(cum_lo: int, cum_hi: int, total: int, scaled: int):
    """Map ``[cum_lo, cum_hi)`` of ``total`` onto a power-of-two grid.

    ``c -> c * scaled // total`` preserves the partition (monotone,
    endpoints fixed) and never collapses a range: consecutive
    boundaries move apart by at least ``scaled // total >= 1``.
    """
    return cum_lo * scaled // total, cum_hi * scaled // total


class RansEncoder:
    """LIFO rANS encoder: push symbols in reverse order, then finish."""

    def __init__(self) -> None:
        self._state = RANS_L
        self._words: List[int] = []
        self._finished = False

    def push(self, cum_lo: int, cum_hi: int, total: int) -> None:
        """Push one symbol occupying ``[cum_lo, cum_hi)`` of ``total``.

        Because rANS is last-in-first-out, the *first* symbol the
        decoder should see must be pushed *last*.
        """
        if self._finished:
            raise RuntimeError("encoder already finished")
        if not (0 <= cum_lo < cum_hi <= total):
            raise ValueError(
                f"invalid cumulative range ({cum_lo}, {cum_hi}, {total})")
        if total > MAX_TOTAL:
            raise ValueError(f"total {total} exceeds MAX_TOTAL {MAX_TOTAL}")
        scaled = _pow2_total(total)
        if scaled != total:  # see module docstring: b-uniqueness
            cum_lo, cum_hi = _rescale(cum_lo, cum_hi, total, scaled)
            total = scaled
        freq = cum_hi - cum_lo
        # renormalize: keep the post-push state below 2^64
        x = self._state
        x_max = ((_WORD * RANS_L) // total) * freq
        while x >= x_max:
            self._words.append(x & 0xFFFFFFFF)
            x >>= 32
        self._state = (x // freq) * total + cum_lo + (x % freq)

    def finish(self) -> bytes:
        """Terminate and return the stream (state header + words)."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        self._finished = True
        head = struct.pack("<Q", self._state)
        # words were emitted newest-last; the decoder consumes them in
        # reverse emission order
        body = b"".join(struct.pack("<I", w) for w in reversed(self._words))
        return head + body


class RansDecoder:
    """FIFO decoder mirroring :class:`RansEncoder`."""

    def __init__(self, data: bytes) -> None:
        if len(data) < 8:
            raise ValueError("rANS stream too short")
        self._state, = struct.unpack_from("<Q", data, 0)
        if self._state < RANS_L:
            raise ValueError("corrupted rANS stream: bad initial state")
        self._data = data
        self._pos = 8

    def peek(self, total: int) -> int:
        """Slot of the next symbol in ``[0, total)``."""
        scaled = _pow2_total(total)
        slot = self._state % scaled
        if scaled == total:
            return slot
        # inverse of the encoder's boundary map c -> c*scaled//total:
        # the largest original slot whose scaled image is <= slot
        return ((slot + 1) * total - 1) // scaled

    def advance(self, cum_lo: int, cum_hi: int, total: int) -> None:
        """Consume the symbol identified by ``(cum_lo, cum_hi, total)``."""
        scaled = _pow2_total(total)
        if scaled != total:
            cum_lo, cum_hi = _rescale(cum_lo, cum_hi, total, scaled)
            total = scaled
        freq = cum_hi - cum_lo
        x = self._state
        x = freq * (x // total) + (x % total) - cum_lo
        while x < RANS_L:
            if self._pos + 4 > len(self._data):
                raise ValueError("corrupted rANS stream: out of words")
            word, = struct.unpack_from("<I", self._data, self._pos)
            self._pos += 4
            x = (x << 32) | word
        self._state = x

    def verify_consumed(self) -> None:
        """Raise unless the stream was consumed completely and exactly.

        A fully decoded stream must have read every renormalization
        word *and* returned the state to the encoder's initial value
        (pushes and pops are exact inverses).  Truncated streams with a
        plausible prefix and streams with trailing garbage both decode
        "successfully" without this check.
        """
        if self._pos != len(self._data):
            raise ValueError(
                f"corrupted rANS stream: {len(self._data) - self._pos} "
                f"trailing bytes after the final symbol")
        if self._state != RANS_L:
            raise ValueError(
                "corrupted rANS stream: decoder did not return to the "
                "initial state")


def _build_pow2_rescaled(cumulative: np.ndarray) -> np.ndarray:
    """Row-wise power-of-two rescale of a cumulative table.

    Applies the exact per-boundary map :func:`_rescale` uses inside
    :meth:`RansEncoder.push` / :meth:`RansDecoder.advance` — so driving
    the coder with these rows makes the per-symbol rescale an identity
    and the streams stay byte-for-byte what the unscaled rows produce.
    Tables that are already power-of-two per row (everything
    :func:`repro.entropy.coder.pmf_to_cumulative` builds) pass through
    untouched.
    """
    cum = np.ascontiguousarray(np.asarray(cumulative, dtype=np.int64))
    totals = cum[:, -1]
    if int(totals.max(initial=0)) > MAX_TOTAL:
        raise ValueError(f"total {int(totals.max())} exceeds MAX_TOTAL "
                         f"{MAX_TOTAL}")
    safe = np.maximum(totals, 1)  # all-zero rows stay unusable, not fatal
    v = (safe - 1).astype(np.uint64)
    for shift in (1, 2, 4, 8, 16):  # bit-smear: exact where log2 is not
        v = v | (v >> np.uint64(shift))
    scaled_tot = (v + np.uint64(1)).astype(np.int64)
    if np.array_equal(scaled_tot, totals):
        out = cum.copy()  # never cache an alias of the caller's array
    else:
        out = cum * scaled_tot[:, None] // safe[:, None]
    out.setflags(write=False)
    return out


def _pow2_rescaled_table(cumulative: np.ndarray) -> np.ndarray:
    """Memoized :func:`_build_pow2_rescaled` (process
    :class:`~repro.entropy.tablecoder.TableCache`): identical tables —
    one per window of a sweep — rescale once, not per call."""
    # local import: tablecoder imports RANS_L from this module
    from .tablecoder import TableCache, get_table_cache
    cum = np.asarray(cumulative)
    key = ("rans-pow2", TableCache.digest(cum))
    return get_table_cache().get(key, lambda: _build_pow2_rescaled(cum))


def encode_symbols_rans(symbols: np.ndarray, cumulative: np.ndarray,
                        contexts: np.ndarray) -> bytes:
    """rANS-encode ``symbols[i]`` under ``cumulative[contexts[i]]``.

    Drop-in equivalent of :func:`repro.entropy.coder.encode_symbols`
    with the rANS backend.  The power-of-two b-uniqueness rescale is
    memoized per distinct table (byte-identical streams, see
    :func:`_build_pow2_rescaled`).
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    if symbols.shape != contexts.shape:
        raise ValueError("symbols and contexts must have equal length")
    check_contexts(contexts, cumulative.shape[0])
    alphabet = cumulative.shape[1] - 1
    if symbols.size and (symbols.min() < 0 or symbols.max() >= alphabet):
        raise ValueError(
            f"symbol out of range [0, {alphabet}): "
            f"[{symbols.min()}, {symbols.max()}]")
    scaled = _pow2_rescaled_table(cumulative)
    lo = scaled[contexts, symbols]
    hi = scaled[contexts, symbols + 1]
    tot = scaled[contexts, -1]
    enc = RansEncoder()
    push = enc.push
    # LIFO: push in reverse so decode pops forward
    for a, b, t in zip(lo[::-1].tolist(), hi[::-1].tolist(),
                       tot[::-1].tolist()):
        push(a, b, t)
    return enc.finish()


def decode_symbols_rans(data: bytes, cumulative: np.ndarray,
                        contexts: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_symbols_rans` (same contexts required).

    Strict: raises ``ValueError`` when the stream is truncated or
    carries trailing bytes (see :meth:`RansDecoder.verify_consumed`).
    """
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    check_contexts(contexts, cumulative.shape[0])
    dec = RansDecoder(data)
    out = np.empty(contexts.size, dtype=np.int64)
    # decode in the (memoized) power-of-two domain: peek/advance see
    # rescale-identity rows, and the searchsorted symbol choice is
    # unchanged because the boundary map preserves the partition
    scaled = _pow2_rescaled_table(cumulative)
    totals = scaled[:, -1]
    for i, c in enumerate(contexts.tolist()):
        row = scaled[c]
        total = int(totals[c])
        slot = dec.peek(total)
        s = int(np.searchsorted(row, slot, side="right")) - 1
        dec.advance(int(row[s]), int(row[s + 1]), total)
        out[i] = s
    dec.verify_consumed()
    return out
