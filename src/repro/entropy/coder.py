"""Symbol-stream coding on top of the arithmetic coder.

The models in this package (factorized prior, Gaussian conditional)
reduce to the same interface: every element of a tensor is an integer
*symbol* drawn from a finite alphabet with a per-context cumulative
frequency table.  :func:`encode_symbols` / :func:`decode_symbols` run
the arithmetic coder over such a stream.

Cumulative tables are integer arrays of shape ``(n_contexts,
alphabet + 1)`` with ``table[c, 0] == 0`` and ``table[c, -1] == total``.
Every symbol must have nonzero mass (the table builders in this package
guarantee that).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .rangecoder import MAX_TOTAL, ArithmeticDecoder, ArithmeticEncoder

__all__ = ["encode_symbols", "decode_symbols", "pmf_to_cumulative",
           "check_contexts", "EntropyDecodeError"]


class EntropyDecodeError(ValueError):
    """A compressed symbol stream failed validation during decode.

    Raised by the strict decoders (``vrans``, ``trans``) on truncated
    streams, trailing words, states that fail to return to the initial
    rANS value, or slots that fall outside their table's valid range —
    anywhere the alternative would be silently decoding garbage.
    Subclasses :class:`ValueError` so callers that catch the historical
    error type keep working.
    """


def check_contexts(contexts: np.ndarray, n_contexts: int) -> None:
    """Validate ``0 <= contexts < n_contexts``.

    Negative ids would silently wrap through numpy's fancy indexing and
    encode (or decode) under the *wrong* table — garbage streams with
    no error.  Every symbol-stream endpoint calls this before touching
    ``cumulative[contexts, ...]``.
    """
    if contexts.size and (contexts.min() < 0
                          or contexts.max() >= n_contexts):
        raise ValueError(
            f"context id out of range [0, {n_contexts}): "
            f"[{contexts.min()}, {contexts.max()}]")


def pmf_to_cumulative(pmf: np.ndarray, total: int = MAX_TOTAL) -> np.ndarray:
    """Quantize probability rows to integer cumulative-frequency rows.

    Every symbol is guaranteed at least one count so it remains
    decodable; leftover mass is assigned proportionally (largest
    remainder method on the dominant symbol keeps this O(n)).

    Parameters
    ----------
    pmf:
        ``(n_contexts, alphabet)`` nonnegative rows (need not be
        normalized).
    total:
        Frequency denominator; must be ≥ alphabet and ≤
        :data:`repro.entropy.rangecoder.MAX_TOTAL`.
    """
    pmf = np.atleast_2d(np.asarray(pmf, dtype=np.float64))
    n_ctx, alphabet = pmf.shape
    if total > MAX_TOTAL:
        raise ValueError(f"total {total} exceeds coder limit {MAX_TOTAL}")
    if total < alphabet:
        raise ValueError(
            f"total {total} cannot give every one of {alphabet} symbols "
            "a nonzero count")
    norm = pmf.sum(axis=1, keepdims=True)
    if np.any(norm <= 0):
        raise ValueError("pmf row sums must be positive")
    scaled = pmf / norm * (total - alphabet)
    freqs = np.floor(scaled).astype(np.int64) + 1  # every symbol >= 1
    # Distribute the remaining counts to the most probable symbol of
    # each row so rows sum exactly to ``total``.
    deficit = total - freqs.sum(axis=1)
    top = np.argmax(freqs, axis=1)
    freqs[np.arange(n_ctx), top] += deficit
    cum = np.zeros((n_ctx, alphabet + 1), dtype=np.int64)
    np.cumsum(freqs, axis=1, out=cum[:, 1:])
    return cum


def encode_symbols(symbols: np.ndarray, cumulative: np.ndarray,
                   contexts: np.ndarray) -> bytes:
    """Arithmetic-encode ``symbols[i]`` under ``cumulative[contexts[i]]``.

    Parameters
    ----------
    symbols:
        1-D integer array; each value must lie in ``[0, alphabet)``.
    cumulative:
        ``(n_contexts, alphabet + 1)`` integer cumulative tables.
    contexts:
        1-D integer array, same length as ``symbols``.
    """
    symbols = np.asarray(symbols, dtype=np.int64).ravel()
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    if symbols.shape != contexts.shape:
        raise ValueError("symbols and contexts must have equal length")
    check_contexts(contexts, cumulative.shape[0])
    alphabet = cumulative.shape[1] - 1
    if symbols.size and (symbols.min() < 0 or symbols.max() >= alphabet):
        raise ValueError(
            f"symbol out of range [0, {alphabet}): "
            f"[{symbols.min()}, {symbols.max()}]")
    # Vectorized gather of all interval triples, then a tight coder loop.
    lo = cumulative[contexts, symbols]
    hi = cumulative[contexts, symbols + 1]
    tot = cumulative[contexts, -1]
    enc = ArithmeticEncoder()
    encode = enc.encode
    for a, b, t in zip(lo.tolist(), hi.tolist(), tot.tolist()):
        encode(a, b, t)
    return enc.finish()


def decode_symbols(data: bytes, cumulative: np.ndarray,
                   contexts: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_symbols` (requires the same contexts)."""
    contexts = np.asarray(contexts, dtype=np.int64).ravel()
    check_contexts(contexts, cumulative.shape[0])
    dec = ArithmeticDecoder(data)
    out = np.empty(contexts.size, dtype=np.int64)
    totals = cumulative[:, -1]
    for i, c in enumerate(contexts.tolist()):
        row = cumulative[c]
        total = int(totals[c])
        target = dec.decode_target(total)
        # rightmost index with row[s] <= target  ->  symbol s
        s = int(np.searchsorted(row, target, side="right")) - 1
        dec.advance(int(row[s]), int(row[s + 1]), total)
        out[i] = s
    return out
