"""Non-parametric fully factorized density model for the hyper-latent.

Implements the univariate cumulative model of Ballé et al. (2018),
"Variational image compression with a scale hyperprior", Appendix 6.1 —
the paper cites it as "[4] the non-parametric, fully factorized density
model p(z)".  Each channel ``c`` owns a small monotone MLP whose output
passed through a sigmoid is the channel's CDF; the probability of a
quantized value is the CDF difference across the unit-width bin
(the ``* U(-0.5, 0.5)`` convolution of Eq. 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Module, Parameter, Tensor, no_grad
from ..nn import functional as F
from .backend import DEFAULT_BACKEND, get_backend
from .coder import pmf_to_cumulative
from .tablecoder import TableCache, get_table_cache

__all__ = ["FactorizedDensity"]

_LIKELIHOOD_FLOOR = 1e-9


class FactorizedDensity(Module):
    """Learned factorized prior over a ``C``-channel latent.

    Parameters
    ----------
    channels:
        Number of latent channels (each gets its own density).
    filters:
        Hidden widths of the monotone CDF network.
    init_scale:
        Initial spread of the density; the default covers roughly
        ``[-init_scale, init_scale]``.
    """

    def __init__(self, channels: int, filters: Sequence[int] = (3, 3, 3),
                 init_scale: float = 10.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.filters = tuple(filters)
        dims = (1,) + self.filters + (1,)
        self._K = len(dims) - 1
        scale = init_scale ** (1.0 / self._K)
        for k in range(self._K):
            r_in, r_out = dims[k], dims[k + 1]
            # softplus(H) ~ 1/(scale * r_out) keeps the initial CDF a
            # gentle sigmoid spanning +-init_scale.
            h0 = np.log(np.expm1(1.0 / scale / r_out))
            H = np.full((channels, r_out, r_in), h0)
            setattr(self, f"H{k}", Parameter(H))
            setattr(self, f"b{k}",
                    Parameter(rng.uniform(-0.5, 0.5, (channels, r_out, 1))))
            if k < self._K - 1:
                setattr(self, f"a{k}",
                        Parameter(np.zeros((channels, r_out, 1))))

    # ------------------------------------------------------------------
    def _logits(self, x: Tensor) -> Tensor:
        """Monotone network producing CDF logits.

        ``x``: tensor of shape ``(C, 1, M)`` — M samples per channel.
        """
        u = x
        for k in range(self._K):
            H = getattr(self, f"H{k}")
            b = getattr(self, f"b{k}")
            u = F.matmul(F.softplus(H), u) + b
            if k < self._K - 1:
                a = getattr(self, f"a{k}")
                u = u + F.tanh(a) * F.tanh(u)
        return u

    def cdf(self, x: Tensor) -> Tensor:
        """Channelwise CDF evaluated at ``x`` of shape ``(C, 1, M)``."""
        return F.sigmoid(self._logits(x))

    def likelihood(self, z: Tensor) -> Tensor:
        """``p(z̃)`` for (noisy or rounded) latents shaped ``(B, C, ...)``.

        Returns a tensor with the same shape as ``z``.
        """
        shape = z.shape
        B, C = shape[0], shape[1]
        if C != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {C}")
        m = int(np.prod(shape)) // (B * C)
        # (B, C, m) -> (C, 1, B*m)
        flat = F.reshape(z, (B, C, m))
        flat = F.swapaxes(flat, 0, 1)
        flat = F.reshape(flat, (C, 1, B * m))
        upper = self.cdf(flat + 0.5)
        lower = self.cdf(flat - 0.5)
        like = F.lower_bound(upper - lower, _LIKELIHOOD_FLOOR)
        like = F.reshape(like, (C, B, m))
        like = F.swapaxes(like, 0, 1)
        return F.reshape(like, shape)

    def bits(self, z: Tensor) -> Tensor:
        """Total bit cost ``E[-log2 p(z)]`` (a scalar tensor)."""
        like = self.likelihood(z)
        return F.sum(F.log(like)) * (-1.0 / np.log(2.0))

    # ------------------------------------------------------------------
    # Actual entropy coding of rounded hyper-latents
    # ------------------------------------------------------------------
    def _integer_cdf_tables(self, zmin: int, zmax: int) -> np.ndarray:
        """Quantized cumulative tables over ``[zmin, zmax]`` per channel.

        Memoized in the process
        :class:`~repro.entropy.tablecoder.TableCache` keyed on a digest
        of the model parameters plus the support bounds: the CDF
        network forward pass and quantization repeat identically for
        every window of a sweep, so they run once per distinct
        ``(weights, zmin, zmax)`` instead of per compress/decompress.
        """
        key = ("factorized-cdf",
               TableCache.digest(*(p.numpy()
                                   for _, p in self.named_parameters())),
               int(zmin), int(zmax))
        return get_table_cache().get(
            key, lambda: self._build_integer_cdf_tables(zmin, zmax))

    def _build_integer_cdf_tables(self, zmin: int, zmax: int) -> np.ndarray:
        support = np.arange(zmin, zmax + 1, dtype=np.float64)
        M = support.size
        with no_grad():
            grid = Tensor(np.broadcast_to(
                support, (self.channels, 1, M)).copy())
            upper = self.cdf(grid + 0.5).numpy()
            lower = self.cdf(grid - 0.5).numpy()
        pmf = np.maximum(upper - lower, _LIKELIHOOD_FLOOR)[:, 0, :]
        # Fold tail mass beyond the support into the edge bins so the
        # tables stay a proper distribution.
        lo_tail = lower[:, 0, 0]
        hi_tail = 1.0 - upper[:, 0, -1]
        pmf[:, 0] += np.maximum(lo_tail, 0.0)
        pmf[:, -1] += np.maximum(hi_tail, 0.0)
        tables = pmf_to_cumulative(pmf)
        tables.setflags(write=False)  # cached: shared across callers
        return tables

    def compress(self, z_int: np.ndarray,
                 backend=None) -> Tuple[bytes, Dict[str, int]]:
        """Losslessly encode rounded hyper-latents ``(B, C, H, W)``.

        Returns the byte stream plus the header needed to decode
        (support bounds and shape live in the caller's container).
        ``backend`` selects the entropy coder
        (:func:`repro.entropy.backend.get_backend`; ``None`` uses the
        process default); non-default choices are recorded in the
        header so :meth:`decompress` self-selects.
        """
        z_int = np.asarray(z_int)
        zmin = int(min(z_int.min(), 0))
        zmax = int(max(z_int.max(), 0))
        tables = self._integer_cdf_tables(zmin, zmax)
        B, C = z_int.shape[0], z_int.shape[1]
        m = z_int.size // (B * C)
        symbols = (z_int.reshape(B, C, m) - zmin).astype(np.int64)
        contexts = np.broadcast_to(np.arange(C)[None, :, None],
                                   (B, C, m)).ravel()
        coder = get_backend(backend)
        data = coder.encode(symbols.ravel(), tables, contexts)
        header = {"zmin": zmin, "zmax": zmax}
        if coder.name != DEFAULT_BACKEND:
            header["backend"] = coder.name
        return data, header

    def decompress(self, data: bytes, shape: Sequence[int],
                   header: Dict[str, int]) -> np.ndarray:
        """Inverse of :meth:`compress`.

        Headers without a ``"backend"`` entry are legacy arithmetic
        streams and decode bit-identically through the default coder.
        """
        shape = tuple(shape)
        B, C = shape[0], shape[1]
        m = int(np.prod(shape)) // (B * C)
        tables = self._integer_cdf_tables(header["zmin"], header["zmax"])
        contexts = np.broadcast_to(np.arange(C)[None, :, None],
                                   (B, C, m)).ravel()
        coder = get_backend(header.get("backend", DEFAULT_BACKEND))
        symbols = coder.decode(data, tables, contexts)
        return (symbols + header["zmin"]).reshape(shape).astype(np.float64)
