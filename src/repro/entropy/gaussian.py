"""Gaussian conditional entropy model ``p(y | mu, sigma)`` (Eqs. 1–2).

Each quantized latent element is modeled as
``N(mu_i, sigma_i^2) * U(-0.5, 0.5)`` — a Gaussian convolved with the
unit-width quantization noise — so its probability mass is the Gaussian
CDF difference across the rounding bin.  The hyperprior decoder supplies
``(mu, sigma)``.

For actual entropy coding, elements are binned by scale into a small
log-spaced scale table (64 bins, as in reference implementations) and
coded as mean-centered integer offsets.  The fractional part of the
mean is dropped when centering, a standard approximation that costs a
negligible fraction of a bit per element but keeps the decoder's tables
identical to the encoder's.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np
from scipy import special as _sp

from ..nn import Tensor, as_tensor
from ..nn import functional as F
from .backend import DEFAULT_BACKEND, get_backend
from .coder import pmf_to_cumulative
from .tablecoder import TableCache, get_table_cache

__all__ = ["SCALE_MIN", "build_scale_table", "gaussian_likelihood",
           "GaussianConditional"]

#: Lower bound on predicted scales (matches Ballé/Minnen reference code).
SCALE_MIN = 0.11

_LIKELIHOOD_FLOOR = 1e-9


def build_scale_table(levels: int = 64, smin: float = SCALE_MIN,
                      smax: float = 256.0) -> np.ndarray:
    """Log-spaced grid of representative scales for table-based coding."""
    return np.exp(np.linspace(math.log(smin), math.log(smax), levels))


def _std_normal_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + _sp.erf(x / math.sqrt(2.0)))


def gaussian_likelihood(y: Tensor, mu: Tensor, sigma: Tensor) -> Tensor:
    """Differentiable bin mass ``P(y - 0.5 < Y <= y + 0.5)`` (Eq. 2).

    ``sigma`` is lower-bounded at :data:`SCALE_MIN` with a
    gradient-friendly bound so the rate term stays well conditioned.
    """
    y, mu = as_tensor(y), as_tensor(mu)
    sigma = F.lower_bound(as_tensor(sigma), SCALE_MIN)
    inv = 1.0 / math.sqrt(2.0)
    upper = (y - mu + 0.5) / sigma
    lower = (y - mu - 0.5) / sigma
    cdf_u = (F.erf(upper * inv) + 1.0) * 0.5
    cdf_l = (F.erf(lower * inv) + 1.0) * 0.5
    return F.lower_bound(cdf_u - cdf_l, _LIKELIHOOD_FLOOR)


class GaussianConditional:
    """Rate model and entropy codec for hyperprior-conditioned latents."""

    def __init__(self, scale_table: np.ndarray = None):
        self.scale_table = (np.asarray(scale_table)
                            if scale_table is not None
                            else build_scale_table())

    # -- training-time rate ------------------------------------------------
    def bits(self, y: Tensor, mu: Tensor, sigma: Tensor) -> Tensor:
        """Total bit cost ``E[-log2 p(y | mu, sigma)]`` (scalar tensor)."""
        like = gaussian_likelihood(y, mu, sigma)
        return F.sum(F.log(like)) * (-1.0 / np.log(2.0))

    # -- coding -------------------------------------------------------------
    def _bin_indices(self, sigma: np.ndarray) -> np.ndarray:
        """Snap each scale to the nearest table entry (ceil convention)."""
        sigma = np.maximum(sigma, SCALE_MIN)
        return np.searchsorted(self.scale_table, sigma, side="left").clip(
            0, len(self.scale_table) - 1)

    def _offset_tables(self, L: int) -> np.ndarray:
        """Cumulative tables for offsets ``[-L, L]`` per scale bin.

        Memoized in the process
        :class:`~repro.entropy.tablecoder.TableCache`: the table
        depends only on ``(scale_table, L)``, which repeats identically
        across the windows and shards of a sweep, so the erf grid and
        quantization run once per distinct key instead of per call.
        """
        key = ("gauss-offsets", TableCache.digest(self.scale_table),
               int(L))
        return get_table_cache().get(
            key, lambda: self._build_offset_tables(L))

    def _build_offset_tables(self, L: int) -> np.ndarray:
        ks = np.arange(-L, L + 1, dtype=np.float64)
        sig = self.scale_table[:, None]
        pmf = (_std_normal_cdf((ks + 0.5) / sig)
               - _std_normal_cdf((ks - 0.5) / sig))
        pmf = np.maximum(pmf, _LIKELIHOOD_FLOOR)
        # fold tails into edges
        pmf[:, 0] += np.maximum(_std_normal_cdf((-L - 0.5) / sig[:, 0]), 0.0)
        pmf[:, -1] += np.maximum(1.0 - _std_normal_cdf((L + 0.5) / sig[:, 0]),
                                 0.0)
        tables = pmf_to_cumulative(pmf)
        tables.setflags(write=False)  # cached: shared across callers
        return tables

    def compress(self, y_int: np.ndarray, mu: np.ndarray,
                 sigma: np.ndarray,
                 backend=None) -> Tuple[bytes, Dict[str, int]]:
        """Encode rounded latents given the hyperprior's ``(mu, sigma)``.

        ``y_int``, ``mu`` and ``sigma`` must share one shape; the
        decoder must be driven with bit-identical ``mu``/``sigma``.
        ``backend`` selects the entropy coder (``None`` uses the
        process default); non-default choices are recorded in the
        header so :meth:`decompress` self-selects.
        """
        y_int = np.asarray(y_int)
        mu_round = np.rint(np.asarray(mu))
        offsets = (y_int - mu_round).astype(np.int64)
        L = int(max(1, np.abs(offsets).max() if offsets.size else 1))
        tables = self._offset_tables(L)
        contexts = self._bin_indices(np.asarray(sigma)).ravel()
        coder = get_backend(backend)
        data = coder.encode(offsets.ravel() + L, tables, contexts)
        header = {"L": L}
        if coder.name != DEFAULT_BACKEND:
            header["backend"] = coder.name
        return data, header

    def decompress(self, data: bytes, mu: np.ndarray, sigma: np.ndarray,
                   header: Dict[str, int]) -> np.ndarray:
        """Inverse of :meth:`compress`; returns rounded latents.

        Headers without a ``"backend"`` entry are legacy arithmetic
        streams and decode bit-identically through the default coder.
        """
        L = int(header["L"])
        tables = self._offset_tables(L)
        contexts = self._bin_indices(np.asarray(sigma)).ravel()
        coder = get_backend(header.get("backend", DEFAULT_BACKEND))
        symbols = coder.decode(data, tables, contexts)
        mu_round = np.rint(np.asarray(mu))
        offsets = symbols.reshape(mu_round.shape) - L
        return (mu_round + offsets).astype(np.float64)
