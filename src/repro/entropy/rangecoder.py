"""Integer arithmetic coder (Witten–Neal–Cleary style, 32-bit state).

The coder consumes cumulative-frequency triples ``(cum_lo, cum_hi,
total)``: a symbol with probability mass ``(cum_hi - cum_lo) / total``
narrows the coding interval accordingly.  ``total`` must not exceed
:data:`MAX_TOTAL` so interval updates never underflow.

This is the "lossless entropy coding" backend for both the hyperprior
(factorized model) and the latent (Gaussian conditional) streams, and
for the PCA-correction coefficients of the error-bound stage.
"""

from __future__ import annotations

from typing import Sequence

from .bitio import BitReader, BitWriter

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder", "MAX_TOTAL", "PRECISION"]

PRECISION = 32
_FULL = (1 << PRECISION) - 1
_HALF = 1 << (PRECISION - 1)
_QUARTER = 1 << (PRECISION - 2)
_THREE_QUARTER = _HALF + _QUARTER

#: Largest permissible cumulative-frequency total.
MAX_TOTAL = 1 << 16


class ArithmeticEncoder:
    """Streaming arithmetic encoder."""

    def __init__(self) -> None:
        self._low = 0
        self._high = _FULL
        self._pending = 0
        self._bits = BitWriter()
        self._finished = False

    def encode(self, cum_lo: int, cum_hi: int, total: int) -> None:
        """Encode one symbol occupying ``[cum_lo, cum_hi)`` of ``total``."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        if not (0 <= cum_lo < cum_hi <= total):
            raise ValueError(
                f"invalid cumulative range ({cum_lo}, {cum_hi}, {total})")
        if total > MAX_TOTAL:
            raise ValueError(f"total {total} exceeds MAX_TOTAL {MAX_TOTAL}")
        span = self._high - self._low + 1
        self._high = self._low + (span * cum_hi) // total - 1
        self._low = self._low + (span * cum_lo) // total
        self._renormalize()

    def _emit(self, bit: int) -> None:
        self._bits.write(bit)
        if self._pending:
            self._bits.write_run(bit ^ 1, self._pending)
            self._pending = 0

    def _renormalize(self) -> None:
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                return
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def finish(self) -> bytes:
        """Terminate the stream and return the encoded bytes."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        self._finished = True
        self._pending += 1
        if self._low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self._bits.getvalue()


class ArithmeticDecoder:
    """Streaming arithmetic decoder mirroring :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._reader = BitReader(data)
        self._low = 0
        self._high = _FULL
        self._value = 0
        for _ in range(PRECISION):
            self._value = (self._value << 1) | self._reader.read()

    def decode_target(self, total: int) -> int:
        """Return a value in ``[0, total)`` locating the next symbol.

        The caller maps it to a symbol via its cumulative table (e.g.
        ``np.searchsorted``) and then calls :meth:`advance`.
        """
        span = self._high - self._low + 1
        target = ((self._value - self._low + 1) * total - 1) // span
        if target < 0 or target >= total:
            raise ValueError("corrupted stream: target out of range")
        return target

    def advance(self, cum_lo: int, cum_hi: int, total: int) -> None:
        """Consume the symbol identified by ``(cum_lo, cum_hi, total)``."""
        span = self._high - self._low + 1
        self._high = self._low + (span * cum_hi) // total - 1
        self._low = self._low + (span * cum_lo) // total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                return
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._reader.read()
