"""``repro.postprocess`` — PCA-based error-bound guarantee (Sec. 3.5).

After decompression, the residual ``x - x_R`` is projected onto a PCA
basis fitted on training residuals; enough quantized coefficients are
kept (entropy-coded into the ``G`` payload of Eq. 11) that the final
reconstruction satisfies ``||x - x_G||_2 <= tau``.  Blocks the basis
cannot fix within budget fall back to direct residual quantization, so
the bound holds unconditionally.
"""

from .bound import BoundResult, ErrorBoundCorrector
from .coding import decode_ints, encode_ints
from .pca import ResidualPCA, blockify, unblockify
from .qoi import (DerivativeQoI, LinearQoI, QoIRecord, QuadraticQoI,
                  evaluate_qois, mean_qoi, region_average_qoi,
                  temporal_mean_qoi)

__all__ = ["ResidualPCA", "blockify", "unblockify", "ErrorBoundCorrector",
           "BoundResult", "encode_ints", "decode_ints",
           "LinearQoI", "QuadraticQoI", "DerivativeQoI", "QoIRecord",
           "evaluate_qois", "mean_qoi", "region_average_qoi",
           "temporal_mean_qoi"]
