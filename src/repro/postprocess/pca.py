"""Residual PCA basis (the matrix ``U`` of Eq. 9).

Following the paper's prior-work recipe [19, 21, 25], the basis is
learned once from training-time residuals and shipped with the model —
it is *not* part of the per-stream payload, only the selected
coefficients are.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ResidualPCA", "blockify", "unblockify"]


def blockify(frames: np.ndarray, block: int) -> Tuple[np.ndarray, Tuple]:
    """Split ``(T, H, W)`` frames into ``(n_blocks, block*block)`` rows.

    Frames are zero-padded up to a multiple of ``block``; the returned
    geometry tuple lets :func:`unblockify` crop back.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError(f"expected (T, H, W), got {frames.shape}")
    T, H, W = frames.shape
    Hp = -(-H // block) * block
    Wp = -(-W // block) * block
    padded = np.zeros((T, Hp, Wp))
    padded[:, :H, :W] = frames
    bh, bw = Hp // block, Wp // block
    rows = (padded.reshape(T, bh, block, bw, block)
            .transpose(0, 1, 3, 2, 4)
            .reshape(T * bh * bw, block * block))
    return rows, (T, H, W, Hp, Wp, block)


def unblockify(rows: np.ndarray, geometry: Tuple) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    T, H, W, Hp, Wp, block = geometry
    bh, bw = Hp // block, Wp // block
    frames = (rows.reshape(T, bh, bw, block, block)
              .transpose(0, 1, 3, 2, 4)
              .reshape(T, Hp, Wp))
    return frames[:, :H, :W].copy()


class ResidualPCA:
    """Truncated PCA over residual blocks.

    Parameters
    ----------
    block:
        Spatial block edge; residual vectors have ``block**2`` entries.
    rank:
        Number of retained principal components (``U`` is
        ``(block**2, rank)``).
    """

    def __init__(self, block: int = 8, rank: int = 32):
        if rank < 1 or block < 1:
            raise ValueError("block and rank must be positive")
        self.block = block
        self.rank = min(rank, block * block)
        self.basis: np.ndarray = None  # (D, rank), orthonormal columns

    @property
    def is_fitted(self) -> bool:
        return self.basis is not None

    def fit(self, residual_frames: np.ndarray) -> "ResidualPCA":
        """Fit ``U`` from training residual frames ``(T, H, W)``."""
        rows, _ = blockify(residual_frames, self.block)
        # right singular vectors of the (samples x D) residual matrix
        _, _, vt = np.linalg.svd(rows, full_matrices=False)
        k = min(self.rank, vt.shape[0])
        basis = vt[:k].T  # (D, k)
        if k < self.rank:
            # degenerate training set: complete with identity directions
            D = self.block * self.block
            extra = np.eye(D)[:, : self.rank - k]
            q, _ = np.linalg.qr(np.concatenate([basis, extra], axis=1))
            basis = q[:, : self.rank]
        self.basis = basis
        return self

    def project(self, rows: np.ndarray) -> np.ndarray:
        """Coefficients ``c = U^T r`` (Eq. 9) for residual rows."""
        self._check()
        return rows @ self.basis

    def reconstruct(self, coeffs: np.ndarray) -> np.ndarray:
        """Correction ``U c`` (used in Eq. 10)."""
        self._check()
        return coeffs @ self.basis.T

    def state(self) -> dict:
        self._check()
        return {"block": self.block, "rank": self.rank, "basis": self.basis}

    @classmethod
    def from_state(cls, state: dict) -> "ResidualPCA":
        obj = cls(block=int(state["block"]), rank=int(state["rank"]))
        obj.basis = np.asarray(state["basis"], dtype=np.float64)
        return obj

    def _check(self) -> None:
        if self.basis is None:
            raise RuntimeError("ResidualPCA is not fitted")
