"""Quantities-of-interest (QoI) error certification.

The paper's introduction frames error-bound guarantees as covering both
primary data (PD) *and* quantities of interest: "ensuring that
downstream scientific analysis remains valid after compression".  The
pipeline's post-processing stage (Sec. 3.5) guarantees
``||x - x_G||_2 <= tau`` on the PD; this module propagates that single
guarantee to derived quantities, following the linear-QoI analysis of
the group's earlier work ([19], [21]).

* **Linear QoIs** ``Q(x) = <w, x>`` (means, fluxes, regional averages,
  weighted integrals): Cauchy–Schwarz gives the *a-priori* certificate
  ``|Q(x) - Q(x_G)| <= ||w||_2 * tau`` — no access to the original data
  needed.
* **Bounded-operator QoIs** (finite-difference derivative fields):
  ``||D(x - x_G)||_2 <= ||D||_2 * tau`` with an explicit operator-norm
  bound for the difference stencils.
* **Quadratic QoIs** (energy ``sum(x^2)``, enstrophy-style quantities):
  certified with the data-dependent bound
  ``|Q(x) - Q(x_G)| <= tau * (2 ||x_G||_2 + tau)`` which is computable
  from the *reconstruction alone* — the decoder can certify it without
  the original.

:func:`evaluate_qois` produces a per-QoI report of achieved versus
certified error so workflows can assert validity mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["LinearQoI", "QuadraticQoI", "DerivativeQoI", "QoIRecord",
           "evaluate_qois", "mean_qoi", "region_average_qoi",
           "temporal_mean_qoi"]


class LinearQoI:
    """``Q(x) = <w, x>`` with the Cauchy–Schwarz certificate.

    Parameters
    ----------
    name:
        Label used in reports.
    weights:
        Array broadcastable to the data shape.  The certificate uses
        its L2 norm, so weights are stored at full precision.
    """

    def __init__(self, name: str, weights: np.ndarray):
        self.name = name
        self.weights = np.asarray(weights, dtype=np.float64)
        self.weight_norm = float(np.linalg.norm(self.weights))

    def evaluate(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.weights.shape:
            raise ValueError(
                f"data shape {x.shape} != weights {self.weights.shape}")
        return float(np.vdot(self.weights, x))

    def certified_bound(self, tau: float,
                        reconstruction: Optional[np.ndarray] = None
                        ) -> float:
        """``|Q(x) - Q(x_G)| <= ||w|| * tau`` for any x within tau."""
        return self.weight_norm * tau


def mean_qoi(shape: Sequence[int], name: str = "global-mean") -> LinearQoI:
    """Global mean of the field (the canonical conservation check)."""
    n = int(np.prod(shape))
    return LinearQoI(name, np.full(shape, 1.0 / n))


def region_average_qoi(mask: np.ndarray,
                       name: str = "region-average") -> LinearQoI:
    """Average over a boolean region (e.g. a basin, a flame kernel)."""
    mask = np.asarray(mask, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        raise ValueError("region mask selects no points")
    return LinearQoI(name, mask.astype(np.float64) / count)


def temporal_mean_qoi(shape: Sequence[int], pixel: tuple,
                      name: str = "point-time-series-mean") -> LinearQoI:
    """Time-mean at one spatial location (a virtual probe)."""
    w = np.zeros(shape)
    w[(slice(None),) + tuple(pixel)] = 1.0 / shape[0]
    return LinearQoI(name, w)


class QuadraticQoI:
    """``Q(x) = sum(x^2)`` (energy), certified from the reconstruction.

    ``|Q(x) - Q(x_G)| = |<x - x_G, x + x_G>| <= tau * (||x|| + ||x_G||)
    <= tau * (2 ||x_G||_2 + tau)`` — the last step bounds the unseen
    ``||x||`` by ``||x_G|| + tau``, so the decoder can certify the QoI
    without the original data.
    """

    def __init__(self, name: str = "energy"):
        self.name = name

    def evaluate(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return float((x * x).sum())

    def certified_bound(self, tau: float,
                        reconstruction: Optional[np.ndarray] = None
                        ) -> float:
        if reconstruction is None:
            raise ValueError(
                "QuadraticQoI certification needs the reconstruction")
        norm_g = float(np.linalg.norm(reconstruction))
        return tau * (2.0 * norm_g + tau)


class DerivativeQoI:
    """L2 norm of a central-difference derivative field.

    ``Q(x) = ||D_axis x||_2`` where ``D`` is :func:`numpy.gradient`
    (central differences inside, one-sided at the boundary).  Schur's
    test bounds the operator norm by
    ``sqrt(||D||_1 * ||D||_inf) <= sqrt(3) / spacing`` (the one-sided
    boundary rows dominate both sums); we certify with the rounder
    ``2 / spacing``, so by the reverse triangle inequality
    ``|Q(x) - Q(x_G)| <= ||D (x - x_G)||_2 <= 2 * tau / spacing``.
    """

    def __init__(self, axis: int, spacing: float = 1.0,
                 name: Optional[str] = None):
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        self.axis = axis
        self.spacing = float(spacing)
        self.name = name or f"grad-axis{axis}-l2"

    def _derivative(self, x: np.ndarray) -> np.ndarray:
        return np.gradient(np.asarray(x, dtype=np.float64),
                           self.spacing, axis=self.axis)

    def evaluate(self, x: np.ndarray) -> float:
        return float(np.linalg.norm(self._derivative(x)))

    def certified_bound(self, tau: float,
                        reconstruction: Optional[np.ndarray] = None
                        ) -> float:
        return 2.0 * tau / self.spacing


@dataclass(frozen=True)
class QoIRecord:
    """One row of a QoI validity report."""

    name: str
    original_value: float
    reconstructed_value: float
    achieved_error: float
    certified_bound: float

    @property
    def within_bound(self) -> bool:
        return self.achieved_error <= self.certified_bound * (1 + 1e-9)


def evaluate_qois(x: np.ndarray, x_g: np.ndarray, qois: Sequence,
                  tau: float) -> List[QoIRecord]:
    """Evaluate every QoI on original vs reconstruction.

    ``tau`` is the guaranteed PD bound ``||x - x_G||_2 <= tau`` (from
    :class:`repro.postprocess.ErrorBoundCorrector`); each record pairs
    the achieved QoI error with its a-priori certificate.  A record
    with ``within_bound == False`` indicates the PD bound was violated
    upstream (the certificates are theorems conditional on it).
    """
    x = np.asarray(x, dtype=np.float64)
    x_g = np.asarray(x_g, dtype=np.float64)
    if x.shape != x_g.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {x_g.shape}")
    if tau <= 0:
        raise ValueError("tau must be positive")
    records = []
    for q in qois:
        v0 = q.evaluate(x)
        v1 = q.evaluate(x_g)
        records.append(QoIRecord(
            name=q.name, original_value=v0, reconstructed_value=v1,
            achieved_error=abs(v0 - v1),
            certified_bound=q.certified_bound(tau, reconstruction=x_g)))
    return records
