"""Entropy coding of correction payloads (quantized coefficients).

A self-describing, self-delimiting integer codec: a compact histogram
header plus an entropy-coded body.  Used for PCA coefficient values,
kept-index lists, per-block counts and escape-block residuals —
everything in the ``G`` term of Eq. 11 goes through here, so its size
accounting is honest bytes, not estimates.

The body coder is pluggable (:mod:`repro.entropy.backend`): payloads
written with the default arithmetic backend keep the legacy ``RI``
magic byte-for-byte; any other backend writes ``RT`` plus the
backend's one-byte wire tag, so :func:`decode_ints` self-selects the
decoder with no caller hints — which is how every baseline codec in
the repo gains backend choice without touching its own format.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from ..entropy.backend import (DEFAULT_BACKEND, backend_from_tag,
                               get_backend)
from ..entropy.coder import pmf_to_cumulative

__all__ = ["encode_ints", "decode_ints"]

_MAGIC = b"RI"
_VARINT_MAGIC = b"RV"
_TAGGED_MAGIC = b"RT"  # + one backend tag byte, then the _MAGIC layout
_HEADER = "<IqiI"  # count, vmin, alphabet, body length

#: Above this alphabet size the histogram header would dominate; fall
#: back to zigzag varints (used by rare escape blocks with huge ranges).
_MAX_HISTOGRAM_ALPHABET = 1 << 12


def _zigzag(v: np.ndarray) -> np.ndarray:
    return np.where(v >= 0, 2 * v, -2 * v - 1).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    u = u.astype(np.int64)
    return np.where(u % 2 == 0, u // 2, -(u // 2) - 1)


def _encode_varints(values: np.ndarray) -> bytes:
    out = bytearray(_VARINT_MAGIC)
    out += struct.pack("<I", values.size)
    for u in _zigzag(values).tolist():
        while True:
            byte = u & 0x7F
            u >>= 7
            if u:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode_varints(data: bytes, offset: int) -> Tuple[np.ndarray, int]:
    n, = struct.unpack_from("<I", data, offset + 2)
    pos = offset + 2 + 4
    vals = np.empty(n, dtype=np.uint64)
    for i in range(n):
        u, shift = 0, 0
        while True:
            byte = data[pos]
            pos += 1
            u |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        vals[i] = u
    return _unzigzag(vals), pos


def encode_ints(values: np.ndarray, backend=None) -> bytes:
    """Encode an integer array into a self-delimiting byte payload.

    Layout: magic, count, vmin, alphabet size, body length, 32-bit
    histogram, entropy-coded body.  The histogram header is the
    price of adaptivity; for the small alphabets of quantized residual
    coefficients it is a few dozen bytes.  ``backend`` selects the
    body coder (``None`` uses the process default); the arithmetic
    default keeps the legacy wire format byte-for-byte.
    """
    values = np.asarray(values, dtype=np.int64).ravel()
    n = values.size
    if n == 0:
        return _MAGIC + struct.pack(_HEADER, 0, 0, 0, 0)
    coder = get_backend(backend)
    vmin = int(values.min())
    vmax = int(values.max())
    alphabet = vmax - vmin + 1
    varint = _encode_varints(values)
    if alphabet > _MAX_HISTOGRAM_ALPHABET:
        return varint
    symbols = values - vmin
    hist = np.bincount(symbols, minlength=alphabet).astype(np.int64)
    if alphabet == 1:
        body = b""
    else:
        tables = pmf_to_cumulative(hist[None, :].astype(np.float64))
        body = coder.encode(symbols, tables, np.zeros(n, dtype=np.int64))
    if coder.name == DEFAULT_BACKEND:
        header = _MAGIC
    else:
        header = _TAGGED_MAGIC + struct.pack("<B", coder.tag)
    header += struct.pack(_HEADER, n, vmin, alphabet, len(body))
    header += hist.astype("<u4").tobytes()
    coded = header + body
    # The histogram header can dominate small payloads; keep whichever
    # representation is actually smaller (magic bytes disambiguate).
    return coded if len(coded) <= len(varint) else varint


def decode_ints(data: bytes, offset: int = 0) -> Tuple[np.ndarray, int]:
    """Decode one :func:`encode_ints` payload starting at ``offset``.

    Returns ``(values, next_offset)`` so multiple payloads can be
    concatenated back to back.  The body decoder is chosen by the
    payload itself: legacy ``RI`` payloads are arithmetic, ``RT``
    payloads carry a one-byte backend tag.
    """
    magic = data[offset:offset + 2]
    if magic == _VARINT_MAGIC:
        return _decode_varints(data, offset)
    if magic == _TAGGED_MAGIC:
        coder = backend_from_tag(data[offset + 2])
        pos = offset + 3
    elif magic == _MAGIC:
        coder = get_backend(DEFAULT_BACKEND)
        pos = offset + 2
    else:
        raise ValueError("corrupted payload: bad magic")
    n, vmin, alphabet, body_len = struct.unpack_from(_HEADER, data, pos)
    pos += struct.calcsize(_HEADER)
    if n == 0:
        return np.zeros(0, dtype=np.int64), pos
    hist = np.frombuffer(data, dtype="<u4", count=alphabet,
                         offset=pos).astype(np.int64)
    pos += 4 * alphabet
    if alphabet == 1:
        return np.full(n, vmin, dtype=np.int64), pos
    tables = pmf_to_cumulative(hist[None, :].astype(np.float64))
    symbols = coder.decode(data[pos:pos + body_len], tables,
                           np.zeros(n, dtype=np.int64))
    return symbols + vmin, pos + body_len
