"""Error-bound enforcement (Eqs. 9-10).

Given the original frames ``x`` and a lossy reconstruction ``x_R``,
:class:`ErrorBoundCorrector` produces a corrected ``x_G`` with
``||x - x_G||_2 <= tau`` plus the coded payload whose size is the
``Size(G)`` term of the compression ratio (Eq. 11).

Per block the corrector greedily keeps the largest-magnitude PCA
coefficients (quantized) until the *actual recomputed* block error
meets its share of the budget; blocks the truncated basis cannot fix
fall back to direct uniform quantization of the leftover residual
("escape" blocks), which bounds the block error by construction.  The
bound therefore holds unconditionally, not just in expectation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .coding import decode_ints, encode_ints
from .pca import ResidualPCA, blockify, unblockify

__all__ = ["ErrorBoundCorrector", "BoundResult"]

_HDR = "<dII"  # tau, n_blocks, geometry marker (block edge)


@dataclass
class BoundResult:
    """Outcome of a correction pass."""

    corrected: np.ndarray     # x_G
    payload: bytes            # coded G stream
    achieved_l2: float        # actual ||x - x_G||_2
    tau: float
    n_escape_blocks: int
    n_coefficients: int

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)


class ErrorBoundCorrector:
    """PCA residual corrector with an unconditional L2 guarantee.

    Parameters
    ----------
    pca:
        Fitted residual basis (orthonormal columns).
    coeff_quant_bits:
        Quantizer resolution for the kept coefficients.
    vectorized:
        Select coefficients with the whole-array cumulative-sum path
        instead of the per-block Python loop.  Both produce the same
        guarantee; the vectorized path is the "accelerated
        post-processing" the paper lists as future work (Sec. 5) and is
        the default.  Because the basis is orthonormal, the block error
        after keeping quantized coefficients ``q̃_j`` is exactly
        ``||r||² − Σ_j (2 c_j q̃_j − q̃_j²)`` — a cumulative sum over
        the magnitude-sorted coefficients, computable for every block
        and every prefix length at once.
    """

    def __init__(self, pca: ResidualPCA, coeff_quant_bits: int = 10,
                 vectorized: bool = True):
        if not pca.is_fitted:
            raise ValueError("corrector requires a fitted ResidualPCA")
        if coeff_quant_bits < 2:
            raise ValueError("coeff_quant_bits must be >= 2")
        self.pca = pca
        self.coeff_quant_bits = coeff_quant_bits
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def correct(self, x: np.ndarray, x_r: np.ndarray,
                tau: float) -> BoundResult:
        """Encode a correction achieving ``||x - x_G||_2 <= tau``.

        ``x`` and ``x_r`` are ``(T, H, W)`` frame stacks.
        """
        x = np.asarray(x, dtype=np.float64)
        x_r = np.asarray(x_r, dtype=np.float64)
        if x.shape != x_r.shape:
            raise ValueError(f"shape mismatch {x.shape} vs {x_r.shape}")
        if tau <= 0:
            raise ValueError("tau must be positive")
        residual = x - x_r
        rows, geom = blockify(residual, self.pca.block)
        nb, D = rows.shape
        # uniform per-block share of the squared budget (with slack for
        # coefficient quantization noise)
        tau_b2 = (tau * tau) / nb
        tau_b = np.sqrt(tau_b2)

        coeffs = self.pca.project(rows)                  # (nb, rank)
        qstep = 2.0 * tau_b / (1 << self.coeff_quant_bits)
        qstep = max(qstep, 1e-12)

        order = np.argsort(-np.abs(coeffs), axis=1)      # desc magnitude
        block_err2 = np.einsum("ij,ij->i", rows, rows)
        # escape-block quantizer: elementwise step so the block L2 error
        # after quantization is <= tau_b by construction
        esc_step = max(2.0 * tau_b / np.sqrt(D), 1e-12)

        select = (self._select_vectorized if self.vectorized
                  else self._select_loop)
        (kept_counts, kept_idx, kept_q, escape_mask, esc_vals,
         correction) = select(rows, coeffs, order, block_err2, tau_b2,
                              qstep, esc_step)

        corrected_rows = rows - correction  # leftover error, for stats
        x_g = x_r + unblockify(correction, geom)
        achieved = float(np.linalg.norm(x - x_g))

        payload = self._pack(tau, geom, kept_counts, kept_idx, kept_q,
                             escape_mask, esc_vals, qstep, esc_step)
        # belt-and-braces: the construction guarantees this, assert it
        if achieved > tau * (1 + 1e-9):
            raise AssertionError(
                f"error bound violated: {achieved} > {tau}")
        return BoundResult(corrected=x_g, payload=payload,
                           achieved_l2=achieved, tau=tau,
                           n_escape_blocks=int(escape_mask.sum()),
                           n_coefficients=len(kept_q))

    # ------------------------------------------------------------------
    # coefficient-selection backends
    # ------------------------------------------------------------------
    def _select_loop(self, rows, coeffs, order, block_err2, tau_b2,
                     qstep, esc_step):
        """Reference per-block greedy loop (kept for verification)."""
        nb, D = rows.shape
        kept_counts = np.zeros(nb, dtype=np.int64)
        kept_idx: list = []
        kept_q: list = []
        escape_mask = np.zeros(nb, dtype=bool)
        esc_vals: list = []
        correction = np.zeros_like(rows)

        for b in np.nonzero(block_err2 > tau_b2)[0]:
            r = rows[b]
            approx = np.zeros(D)
            chosen: list = []
            qvals: list = []
            ok = False
            for rank_pos in range(self.pca.rank):
                j = order[b, rank_pos]
                q = int(np.rint(coeffs[b, j] / qstep))
                if q == 0:
                    continue
                chosen.append(int(j))
                qvals.append(q)
                approx = approx + (q * qstep) * self.pca.basis[:, j]
                err2 = float(((r - approx) ** 2).sum())
                if err2 <= tau_b2:
                    ok = True
                    break
            if ok:
                kept_counts[b] = len(chosen)
                kept_idx.extend(chosen)
                kept_q.extend(qvals)
                correction[b] = approx
            else:
                # escape: quantize the raw residual directly
                escape_mask[b] = True
                q = np.rint(r / esc_step).astype(np.int64)
                esc_vals.append(q)
                correction[b] = q * esc_step
        return (kept_counts, kept_idx, kept_q, escape_mask, esc_vals,
                correction)

    def _select_vectorized(self, rows, coeffs, order, block_err2, tau_b2,
                           qstep, esc_step):
        """Whole-array selection (the accelerated post-processing path).

        Orthonormal columns make the error after keeping the quantized
        prefix ``{j_1..j_k}`` exactly
        ``||r||² − Σ_{i<=k} (2 c_{j_i} q̃_{j_i} − q̃_{j_i}²)``; the
        prefix errors for every block and every k are one cumulative
        sum over the magnitude-sorted coefficient array.
        """
        nb, D = rows.shape
        active = np.nonzero(block_err2 > tau_b2)[0]
        kept_counts = np.zeros(nb, dtype=np.int64)
        kept_idx: list = []
        kept_q: list = []
        escape_mask = np.zeros(nb, dtype=bool)
        esc_vals: list = []
        correction = np.zeros_like(rows)
        if active.size == 0:
            return (kept_counts, kept_idx, kept_q, escape_mask, esc_vals,
                    correction)

        a_coeffs = coeffs[active]                          # (na, rank)
        a_order = order[active]
        sorted_c = np.take_along_axis(a_coeffs, a_order, axis=1)
        q_sorted = np.rint(sorted_c / qstep)
        q_tilde = q_sorted * qstep
        # error reduction of each kept coefficient (0 where q == 0)
        delta = 2.0 * sorted_c * q_tilde - q_tilde ** 2
        err_after = block_err2[active][:, None] - np.cumsum(delta, axis=1)
        hits = err_after <= tau_b2
        any_hit = hits.any(axis=1)
        first_hit = np.argmax(hits, axis=1)               # valid where any

        for ai, b in enumerate(active):
            if any_hit[ai]:
                m = int(first_hit[ai]) + 1                # prefix length
                nz = q_sorted[ai, :m] != 0
                chosen = a_order[ai, :m][nz]
                qvals = q_sorted[ai, :m][nz].astype(np.int64)
                kept_counts[b] = chosen.size
                kept_idx.extend(chosen.tolist())
                kept_q.extend(qvals.tolist())
                correction[b] = (self.pca.basis[:, chosen]
                                 @ (qvals * qstep))
            else:
                escape_mask[b] = True
                q = np.rint(rows[b] / esc_step).astype(np.int64)
                esc_vals.append(q)
                correction[b] = q * esc_step
        return (kept_counts, kept_idx, kept_q, escape_mask, esc_vals,
                correction)

    # ------------------------------------------------------------------
    def apply(self, x_r: np.ndarray, payload: bytes) -> np.ndarray:
        """Decoder side: apply a coded correction to ``x_r``."""
        x_r = np.asarray(x_r, dtype=np.float64)
        (tau, geom, kept_counts, kept_idx, kept_q, escape_mask, esc_vals,
         qstep, esc_step) = self._unpack(payload)
        T, H, W, Hp, Wp, block = geom
        if x_r.shape != (T, H, W):
            raise ValueError(
                f"reconstruction shape {x_r.shape} does not match payload "
                f"geometry {(T, H, W)}")
        nb = kept_counts.size
        D = block * block
        correction = np.zeros((nb, D))
        pos = 0
        for b in range(nb):
            k = kept_counts[b]
            if k:
                idx = kept_idx[pos:pos + k]
                q = kept_q[pos:pos + k]
                correction[b] = (self.pca.basis[:, idx]
                                 @ (q.astype(np.float64) * qstep))
                pos += k
        ei = 0
        for b in np.nonzero(escape_mask)[0]:
            correction[b] = esc_vals[ei].astype(np.float64) * esc_step
            ei += 1
        return x_r + unblockify(correction, geom)

    # ------------------------------------------------------------------
    def _pack(self, tau, geom, kept_counts, kept_idx, kept_q, escape_mask,
              esc_vals, qstep, esc_step) -> bytes:
        T, H, W, Hp, Wp, block = geom
        head = struct.pack("<dIIIIII dd", tau, T, H, W, Hp, Wp, block,
                           qstep, esc_step)
        parts = [head]
        parts.append(encode_ints(kept_counts))
        parts.append(encode_ints(np.asarray(kept_idx, dtype=np.int64)))
        parts.append(encode_ints(np.asarray(kept_q, dtype=np.int64)))
        parts.append(encode_ints(escape_mask.astype(np.int64)))
        esc_flat = (np.concatenate(esc_vals) if esc_vals
                    else np.zeros(0, dtype=np.int64))
        parts.append(encode_ints(esc_flat))
        return b"".join(parts)

    def _unpack(self, payload: bytes):
        head_fmt = "<dIIIIII dd"
        head_size = struct.calcsize(head_fmt)
        tau, T, H, W, Hp, Wp, block, qstep, esc_step = struct.unpack_from(
            head_fmt, payload, 0)
        if block != self.pca.block:
            raise ValueError(
                f"payload block edge {block} != corrector block "
                f"{self.pca.block}")
        geom = (T, H, W, Hp, Wp, block)
        off = head_size
        kept_counts, off = decode_ints(payload, off)
        kept_idx, off = decode_ints(payload, off)
        kept_q, off = decode_ints(payload, off)
        esc_flags, off = decode_ints(payload, off)
        esc_flat, off = decode_ints(payload, off)
        escape_mask = esc_flags.astype(bool)
        D = block * block
        n_esc = int(escape_mask.sum())
        esc_vals = [esc_flat[i * D:(i + 1) * D] for i in range(n_esc)]
        return (tau, geom, kept_counts, kept_idx, kept_q, escape_mask,
                esc_vals, qstep, esc_step)
